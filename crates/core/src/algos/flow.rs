//! Dinic's maximum-flow algorithm — the substrate for scheduling with
//! release dates.
//!
//! Table I of the paper lists `P | var; Vᵢ/q, δᵢ, rᵢ | Cmax` as solvable in
//! O(n²) [Drozdowski 2001]. The feasibility core of that result is a
//! transportation problem: between consecutive release dates the machine
//! offers `P·len` units of capacity and each *released* task can absorb at
//! most `δᵢ·len`; a common deadline `T` is feasible iff the corresponding
//! bipartite flow saturates all volumes. We solve it with a small dense
//! Dinic implementation (the graphs have O(n²) edges at n ≤ a few
//! thousand, well within Dinic's comfort zone).

use std::collections::VecDeque;

/// A directed edge in the flow network.
#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: f64,
    flow: f64,
}

/// Max-flow network on dense small graphs (Dinic's algorithm).
///
/// Capacities are `f64`; the algorithm is exact up to float arithmetic
/// (every augmentation subtracts exact minima, so no error accumulates
/// beyond the input precision). A relative ε guards the saturation tests.
#[derive(Debug, Default)]
pub struct FlowNetwork {
    edges: Vec<Edge>,
    /// Adjacency: node → indices into `edges` (even = forward, odd = back).
    adj: Vec<Vec<usize>>,
    eps: f64,
}

impl FlowNetwork {
    /// A network with `n` nodes and comparison slack `eps`.
    pub fn new(n: usize, eps: f64) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            eps,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add a new node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add an edge `from → to` with capacity `cap` (and its residual).
    /// Returns the edge id (usable with [`FlowNetwork::flow_on`]).
    ///
    /// # Panics
    /// Panics on out-of-range nodes or negative capacity (builder misuse).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) -> usize {
        assert!(from < self.adj.len() && to < self.adj.len(), "bad node");
        assert!(cap >= 0.0, "negative capacity");
        let id = self.edges.len();
        self.edges.push(Edge { to, cap, flow: 0.0 });
        self.edges.push(Edge {
            to: from,
            cap: 0.0,
            flow: 0.0,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Flow currently routed through edge `id`.
    pub fn flow_on(&self, id: usize) -> f64 {
        self.edges[id].flow
    }

    fn residual(&self, id: usize) -> f64 {
        self.edges[id].cap - self.edges[id].flow
    }

    /// Run Dinic's algorithm from `s` to `t`; returns the max-flow value.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert_ne!(s, t, "source equals sink");
        let n = self.adj.len();
        let mut total = 0.0;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut q = VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid];
                    if level[e.to] == usize::MAX && self.residual(eid) > self.eps {
                        level[e.to] = level[u] + 1;
                        q.push_back(e.to);
                    }
                }
            }
            if level[t] == usize::MAX {
                return total;
            }
            // DFS blocking flow with iteration pointers.
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut it);
                if pushed <= self.eps {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: f64, level: &[usize], it: &mut [usize]) -> f64 {
        if u == t {
            return limit;
        }
        while it[u] < self.adj[u].len() {
            let eid = self.adj[u][it[u]];
            let to = self.edges[eid].to;
            if level[to] == level[u] + 1 && self.residual(eid) > self.eps {
                let pushed = self.dfs(to, t, limit.min(self.residual(eid)), level, it);
                if pushed > self.eps {
                    self.edges[eid].flow += pushed;
                    self.edges[eid ^ 1].flow -= pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2, 1e-12);
        g.add_edge(0, 1, 5.0);
        assert!(close(g.max_flow(0, 1), 5.0));
    }

    #[test]
    fn series_takes_min() {
        let mut g = FlowNetwork::new(3, 1e-12);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 3.0);
        assert!(close(g.max_flow(0, 2), 3.0));
    }

    #[test]
    fn parallel_adds() {
        let mut g = FlowNetwork::new(2, 1e-12);
        g.add_edge(0, 1, 2.0);
        g.add_edge(0, 1, 3.5);
        assert!(close(g.max_flow(0, 1), 5.5));
    }

    #[test]
    fn classic_diamond_with_cross_edge() {
        // s→a (10), s→b (10), a→b (1), a→t (4), b→t (9) ⇒ max flow 13.
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 10.0);
        g.add_edge(0, 2, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(1, 3, 4.0);
        g.add_edge(2, 3, 9.0);
        assert!(close(g.max_flow(0, 3), 13.0));
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowNetwork::new(3, 1e-12);
        g.add_edge(0, 1, 5.0);
        assert!(close(g.max_flow(0, 2), 0.0));
    }

    #[test]
    fn flow_on_reports_per_edge_routing() {
        let mut g = FlowNetwork::new(3, 1e-12);
        let a = g.add_edge(0, 1, 4.0);
        let b = g.add_edge(1, 2, 2.0);
        g.max_flow(0, 2);
        assert!(close(g.flow_on(a), 2.0));
        assert!(close(g.flow_on(b), 2.0));
    }

    #[test]
    fn fractional_capacities() {
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 0.3);
        g.add_edge(0, 2, 0.7);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 3, 0.5);
        assert!(close(g.max_flow(0, 3), 0.8));
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = FlowNetwork::new(1, 1e-12);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(0, a, 1.0);
        g.add_edge(a, b, 1.0);
        assert!(close(g.max_flow(0, b), 1.0));
        assert_eq!(g.n_nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "bad node")]
    fn bad_node_panics() {
        let mut g = FlowNetwork::new(2, 1e-12);
        g.add_edge(0, 7, 1.0);
    }
}
