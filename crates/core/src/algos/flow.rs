//! Dinic's maximum-flow algorithm — the substrate for scheduling with
//! release dates.
//!
//! Table I of the paper lists `P | var; Vᵢ/q, δᵢ, rᵢ | Cmax` as solvable in
//! O(n²) [Drozdowski 2001]. The feasibility core of that result is a
//! transportation problem: between consecutive release dates the machine
//! offers `P·len` units of capacity and each *released* task can absorb at
//! most `δᵢ·len`; a common deadline `T` is feasible iff the corresponding
//! bipartite flow saturates all volumes. We solve it with a small dense
//! Dinic implementation (the graphs have O(n²) edges at n ≤ a few
//! thousand, well within Dinic's comfort zone).
//!
//! Generic over the scalar, like the rest of the algorithm stack: the
//! `f64` instantiation is exact up to float arithmetic (every augmentation
//! subtracts exact minima, so no error accumulates beyond the input
//! precision, guarded by a relative ε), while an exact field runs with
//! `eps = 0` and produces exact max-flow values — feasibility verdicts
//! that are certificates.

use numkit::Scalar;
use std::collections::VecDeque;

/// A directed edge in the flow network.
#[derive(Debug, Clone)]
struct Edge<S> {
    to: usize,
    cap: S,
    flow: S,
}

/// Max-flow network on dense small graphs (Dinic's algorithm).
#[derive(Debug)]
pub struct FlowNetwork<S = f64> {
    edges: Vec<Edge<S>>,
    /// Adjacency: node → indices into `edges` (even = forward, odd = back).
    adj: Vec<Vec<usize>>,
    eps: S,
}

impl<S: Scalar> FlowNetwork<S> {
    /// A network with `n` nodes and comparison slack `eps` (pass zero for
    /// exact scalars).
    pub fn new(n: usize, eps: S) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            eps,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Reset the network to `n` empty nodes with comparison slack `eps`,
    /// **reusing the existing allocations**: the edge arena and the
    /// adjacency vectors keep their capacity, so a parametric search that
    /// probes many deadlines rebuilds capacities in place instead of
    /// reallocating a fresh network per probe (see
    /// [`crate::algos::parametric`]).
    pub fn reset(&mut self, n: usize, eps: S) {
        self.edges.clear();
        self.adj.truncate(n);
        for a in &mut self.adj {
            a.clear();
        }
        self.adj.resize_with(n, Vec::new);
        self.eps = eps;
    }

    /// Add a new node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add an edge `from → to` with capacity `cap` (and its residual).
    /// Returns the edge id (usable with [`FlowNetwork::flow_on`]).
    ///
    /// # Panics
    /// Panics on out-of-range nodes or negative capacity (builder misuse).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: S) -> usize {
        assert!(from < self.adj.len() && to < self.adj.len(), "bad node");
        assert!(!cap.is_negative(), "negative capacity");
        let id = self.edges.len();
        self.edges.push(Edge {
            to,
            cap,
            flow: S::zero(),
        });
        self.edges.push(Edge {
            to: from,
            cap: S::zero(),
            flow: S::zero(),
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Flow currently routed through edge `id`.
    pub fn flow_on(&self, id: usize) -> S {
        self.edges[id].flow.clone()
    }

    /// The source side of a minimum cut after [`FlowNetwork::max_flow`] has
    /// run: `result[v]` is `true` iff `v` is reachable from `s` in the
    /// residual network. By max-flow/min-cut the edges leaving this set
    /// form a minimum cut, which is exactly the infeasibility certificate
    /// the parametric schedulers extract (the violated task set of a
    /// transportation network that failed to saturate).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        seen[s] = true;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &eid in &self.adj[u] {
                let to = self.edges[eid].to;
                if !seen[to] && self.residual(eid) > self.eps {
                    seen[to] = true;
                    q.push_back(to);
                }
            }
        }
        seen
    }

    fn residual(&self, id: usize) -> S {
        self.edges[id].cap.clone() - self.edges[id].flow.clone()
    }

    /// Run Dinic's algorithm from `s` to `t`; returns the max-flow value.
    ///
    /// # Panics
    /// Panics when `s == t` (builder misuse).
    pub fn max_flow(&mut self, s: usize, t: usize) -> S {
        assert_ne!(s, t, "source equals sink");
        let n = self.adj.len();
        let mut total = S::zero();
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut q = VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid];
                    if level[e.to] == usize::MAX && self.residual(eid) > self.eps {
                        level[e.to] = level[u] + 1;
                        q.push_back(e.to);
                    }
                }
            }
            if level[t] == usize::MAX {
                return total;
            }
            // DFS blocking flow with iteration pointers. `limit = None`
            // means unbounded (the generic stand-in for +∞).
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, None, &level, &mut it);
                if pushed <= self.eps {
                    break;
                }
                total = total + pushed;
            }
        }
    }

    fn dfs(
        &mut self,
        u: usize,
        t: usize,
        limit: Option<S>,
        level: &[usize],
        it: &mut [usize],
    ) -> S {
        if u == t {
            return limit.expect("sink reached through at least one finite-capacity edge");
        }
        while it[u] < self.adj[u].len() {
            let eid = self.adj[u][it[u]];
            let to = self.edges[eid].to;
            if level[to] == level[u] + 1 && self.residual(eid) > self.eps {
                let next_limit = match &limit {
                    Some(l) => l.clone().min_of(self.residual(eid)),
                    None => self.residual(eid),
                };
                let pushed = self.dfs(to, t, Some(next_limit), level, it);
                if pushed > self.eps {
                    self.edges[eid].flow = self.edges[eid].flow.clone() + pushed.clone();
                    self.edges[eid ^ 1].flow = self.edges[eid ^ 1].flow.clone() - pushed.clone();
                    return pushed;
                }
            }
            it[u] += 1;
        }
        S::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2, 1e-12);
        g.add_edge(0, 1, 5.0);
        assert!(close(g.max_flow(0, 1), 5.0));
    }

    #[test]
    fn series_takes_min() {
        let mut g = FlowNetwork::new(3, 1e-12);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 3.0);
        assert!(close(g.max_flow(0, 2), 3.0));
    }

    #[test]
    fn parallel_adds() {
        let mut g = FlowNetwork::new(2, 1e-12);
        g.add_edge(0, 1, 2.0);
        g.add_edge(0, 1, 3.5);
        assert!(close(g.max_flow(0, 1), 5.5));
    }

    #[test]
    fn classic_diamond_with_cross_edge() {
        // s→a (10), s→b (10), a→b (1), a→t (4), b→t (9) ⇒ max flow 13.
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 10.0);
        g.add_edge(0, 2, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(1, 3, 4.0);
        g.add_edge(2, 3, 9.0);
        assert!(close(g.max_flow(0, 3), 13.0));
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowNetwork::new(3, 1e-12);
        g.add_edge(0, 1, 5.0);
        assert!(close(g.max_flow(0, 2), 0.0));
    }

    #[test]
    fn flow_on_reports_per_edge_routing() {
        let mut g = FlowNetwork::new(3, 1e-12);
        let a = g.add_edge(0, 1, 4.0);
        let b = g.add_edge(1, 2, 2.0);
        g.max_flow(0, 2);
        assert!(close(g.flow_on(a), 2.0));
        assert!(close(g.flow_on(b), 2.0));
    }

    #[test]
    fn fractional_capacities() {
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 0.3);
        g.add_edge(0, 2, 0.7);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 3, 0.5);
        assert!(close(g.max_flow(0, 3), 0.8));
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = FlowNetwork::new(1, 1e-12);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(0, a, 1.0);
        g.add_edge(a, b, 1.0);
        assert!(close(g.max_flow(0, b), 1.0));
        assert_eq!(g.n_nodes(), 3);
    }

    #[test]
    fn exact_max_flow_is_exact() {
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        // Same diamond as above, solved with eps = 0: the answer is the
        // integer 13, exactly.
        let mut g = FlowNetwork::<Rational>::new(4, Rational::from_int(0));
        g.add_edge(0, 1, q(10.0));
        g.add_edge(0, 2, q(10.0));
        g.add_edge(1, 2, q(1.0));
        g.add_edge(1, 3, q(4.0));
        g.add_edge(2, 3, q(9.0));
        assert_eq!(g.max_flow(0, 3), Rational::from_int(13));
        // Fractional capacities stay exact, too.
        let mut h = FlowNetwork::<Rational>::new(4, Rational::from_int(0));
        h.add_edge(0, 1, q(0.3));
        h.add_edge(0, 2, q(0.7));
        h.add_edge(1, 3, q(1.0));
        h.add_edge(2, 3, q(0.5));
        assert_eq!(h.max_flow(0, 3), q(0.3) + q(0.5));
    }

    #[test]
    fn min_cut_side_matches_bottleneck() {
        // s→a (10), a→b (1), b→t (10): the bottleneck is a→b, so the
        // source side of the min cut is exactly {s, a}.
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 10.0);
        assert!(close(g.max_flow(0, 3), 1.0));
        assert_eq!(g.min_cut_source_side(0), vec![true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "bad node")]
    fn bad_node_panics() {
        let mut g = FlowNetwork::new(2, 1e-12);
        g.add_edge(0, 7, 1.0);
    }

    #[test]
    fn reset_reuses_the_network_across_solves() {
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 10.0);
        assert!(close(g.max_flow(0, 3), 1.0));
        // Rebuild a different (smaller, then larger) topology in place.
        g.reset(2, 1e-12);
        g.add_edge(0, 1, 2.5);
        assert!(close(g.max_flow(0, 1), 2.5));
        g.reset(5, 1e-12);
        g.add_edge(0, 4, 7.0);
        g.add_edge(4, 3, 3.0);
        assert!(close(g.max_flow(0, 3), 3.0));
        assert_eq!(g.n_nodes(), 5);
    }
}
