//! Dinic's maximum-flow algorithm — the substrate for scheduling with
//! release dates.
//!
//! Table I of the paper lists `P | var; Vᵢ/q, δᵢ, rᵢ | Cmax` as solvable in
//! O(n²) [Drozdowski 2001]. The feasibility core of that result is a
//! transportation problem: between consecutive release dates the machine
//! offers `P·len` units of capacity and each *released* task can absorb at
//! most `δᵢ·len`; a common deadline `T` is feasible iff the corresponding
//! bipartite flow saturates all volumes. We solve it with a small dense
//! Dinic implementation (the graphs have O(n²) edges at n ≤ a few
//! thousand, well within Dinic's comfort zone).
//!
//! Generic over the scalar, like the rest of the algorithm stack: the
//! `f64` instantiation is exact up to float arithmetic (every augmentation
//! subtracts exact minima, so no error accumulates beyond the input
//! precision, guarded by a relative ε), while an exact field runs with
//! `eps = 0` and produces exact max-flow values — feasibility verdicts
//! that are certificates.

use malleable_trace::MetricSet;
use numkit::Scalar;
use std::collections::VecDeque;

/// A directed edge in the flow network.
#[derive(Debug, Clone)]
struct Edge<S> {
    to: usize,
    cap: S,
    flow: S,
}

/// Direction of a walk along the flow decomposition (see
/// [`FlowNetwork::flow_path`]).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Forward,
    Backward,
}

/// Cumulative work counters of a [`FlowNetwork`] — the telemetry the
/// warm-start bench (`results/BENCH_parametric.json`) and the probe
/// sessions report. Counters accumulate across solves on the same network
/// until [`FlowNetwork::reset_stats`]; snapshot-and-subtract to meter one
/// solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// BFS level-graph constructions (Dinic phases). Each phase is one
    /// full augmentation pass over the graph, so this is the
    /// "augmentation passes" count the warm-vs-cold comparison tracks.
    pub phases: u64,
    /// Successful augmenting-path pushes across all phases.
    pub augmentations: u64,
    /// Flow units cancelled while repairing overflowing arcs after a
    /// capacity reduction (zero on cold solves).
    pub repair_paths: u64,
}

/// `FlowStats` is a thin view over the unified counter registry: slot
/// names are the canonical registry names, and the snapshot-and-subtract
/// bookkeeping (`since`/`plus`) comes from the trait instead of being
/// hand-rolled per struct.
impl MetricSet for FlowStats {
    const NAMES: &'static [&'static str] =
        &["flow.phases", "flow.augmentations", "flow.repair_paths"];

    fn get(&self, i: usize) -> u64 {
        [self.phases, self.augmentations, self.repair_paths][i]
    }

    fn set(&mut self, i: usize, value: u64) {
        match i {
            0 => self.phases = value,
            1 => self.augmentations = value,
            _ => self.repair_paths = value,
        }
    }
}

/// Max-flow network on dense small graphs (Dinic's algorithm).
#[derive(Debug)]
pub struct FlowNetwork<S = f64> {
    edges: Vec<Edge<S>>,
    /// Adjacency: node → indices into `edges` (even = forward, odd = back).
    adj: Vec<Vec<usize>>,
    /// Forward edges whose capacity was set below their routed flow since
    /// the last solve — the only candidates the next warm repair must
    /// visit. Augmentation never overfills an arc and repair only cancels
    /// flow, so an arc can overflow *only* through
    /// [`FlowNetwork::set_capacity`]; tracking them here turns the warm
    /// repair's full edge scan into an O(#changed) drain (and a no-op on
    /// the monotone capacity-growth sequences the parametric probes
    /// produce).
    overflowed: Vec<usize>,
    eps: S,
    stats: FlowStats,
}

impl<S: Scalar> FlowNetwork<S> {
    /// A network with `n` nodes and comparison slack `eps` (pass zero for
    /// exact scalars).
    pub fn new(n: usize, eps: S) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            overflowed: Vec::new(),
            eps,
            stats: FlowStats::default(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Reset the network to `n` empty nodes with comparison slack `eps`,
    /// **reusing the existing allocations**: the edge arena and the
    /// adjacency vectors keep their capacity, so a parametric search that
    /// probes many deadlines rebuilds capacities in place instead of
    /// reallocating a fresh network per probe (see
    /// [`crate::algos::parametric`]).
    pub fn reset(&mut self, n: usize, eps: S) {
        self.edges.clear();
        self.overflowed.clear();
        self.adj.truncate(n);
        for a in &mut self.adj {
            a.clear();
        }
        self.adj.resize_with(n, Vec::new);
        self.eps = eps;
    }

    /// Add a new node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add an edge `from → to` with capacity `cap` (and its residual).
    /// Returns the edge id (usable with [`FlowNetwork::flow_on`]).
    ///
    /// # Panics
    /// Panics on out-of-range nodes or negative capacity (builder misuse).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: S) -> usize {
        assert!(from < self.adj.len() && to < self.adj.len(), "bad node");
        assert!(!cap.is_negative(), "negative capacity");
        let id = self.edges.len();
        self.edges.push(Edge {
            to,
            cap,
            flow: S::zero(),
        });
        self.edges.push(Edge {
            to: from,
            cap: S::zero(),
            flow: S::zero(),
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Flow currently routed through edge `id`.
    pub fn flow_on(&self, id: usize) -> S {
        self.edges[id].flow.clone()
    }

    /// Capacity of edge `id`.
    pub fn capacity_on(&self, id: usize) -> S {
        self.edges[id].cap.clone()
    }

    /// Cumulative work counters (phases, augmentations, repairs) since
    /// construction or [`FlowNetwork::reset_stats`]. [`FlowNetwork::reset`]
    /// deliberately does **not** clear them, so a probe session's counters
    /// accumulate across cold rebuilds too.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// Zero the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = FlowStats::default();
    }

    /// Replace the capacity of forward edge `id`, **keeping the routed
    /// flow** — the entry point of the warm-start path. The edge may be
    /// left overflowing (`flow > cap`); it is remembered on a dirty list
    /// and the next [`FlowNetwork::max_flow_warm`] repairs exactly the
    /// remembered edges along decomposition paths before re-augmenting.
    ///
    /// # Panics
    /// Panics on a backward-edge id, an out-of-range id, or a negative
    /// capacity (builder misuse).
    pub fn set_capacity(&mut self, id: usize, cap: S) {
        assert!(id.is_multiple_of(2), "set_capacity takes forward edge ids");
        assert!(id < self.edges.len(), "bad edge id");
        assert!(!cap.is_negative(), "negative capacity");
        if self.edges[id].flow.clone() - cap.clone() > self.eps {
            self.overflowed.push(id);
        }
        self.edges[id].cap = cap;
    }

    /// Net flow currently leaving node `s` (the max-flow value when `s` is
    /// the source and a solve has run). Backward arcs store the negated
    /// forward flow, so the plain sum over the adjacency is already the
    /// net.
    pub fn flow_value(&self, s: usize) -> S {
        S::sum(self.adj[s].iter().map(|&eid| self.edges[eid].flow.clone()))
    }

    /// The source side of a minimum cut after [`FlowNetwork::max_flow`] has
    /// run: `result[v]` is `true` iff `v` is reachable from `s` in the
    /// residual network. By max-flow/min-cut the edges leaving this set
    /// form a minimum cut, which is exactly the infeasibility certificate
    /// the parametric schedulers extract (the violated task set of a
    /// transportation network that failed to saturate).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        seen[s] = true;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &eid in &self.adj[u] {
                let to = self.edges[eid].to;
                if !seen[to] && self.residual(eid) > self.eps {
                    seen[to] = true;
                    q.push_back(to);
                }
            }
        }
        seen
    }

    fn residual(&self, id: usize) -> S {
        self.edges[id].cap.clone() - self.edges[id].flow.clone()
    }

    /// Run Dinic's algorithm from `s` to `t`; returns the max-flow value.
    ///
    /// # Panics
    /// Panics when `s == t` (builder misuse).
    pub fn max_flow(&mut self, s: usize, t: usize) -> S {
        assert_ne!(s, t, "source equals sink");
        let snap = self.stats;
        let mut sp = malleable_trace::span("flow.solve");
        sp.arg("warm", 0);
        self.augment(s, t);
        let delta = self.stats.since(&snap);
        delta.attach(&mut sp);
        delta.record();
        self.flow_value(s)
    }

    /// Re-solve after capacity edits ([`FlowNetwork::set_capacity`])
    /// **without discarding the routed flow**: first repair every
    /// overflowing arc by cancelling its excess along flow-decomposition
    /// paths (or cycles), then resume Dinic's augmentation from the warm
    /// residual. Returns the new max-flow value.
    ///
    /// The repaired-then-augmented flow is a maximum flow of the edited
    /// network, so the max-flow value — and the residual-reachable source
    /// side of the min cut, which is the *unique inclusion-minimal* min
    /// cut of any maximum flow — agree exactly with a cold solve on exact
    /// scalars. Monotone capacity sequences (the parametric probes) pay
    /// only for the delta between consecutive networks.
    ///
    /// # Panics
    /// Panics when `s == t` (builder misuse).
    pub fn max_flow_warm(&mut self, s: usize, t: usize) -> S {
        assert_ne!(s, t, "source equals sink");
        let snap = self.stats;
        let mut sp = malleable_trace::span("flow.solve");
        sp.arg("warm", 1);
        {
            let mut repair_sp = malleable_trace::span("flow.repair");
            let repaired_before = self.stats.repair_paths;
            self.repair_overflows(s, t);
            repair_sp.arg(
                "flow.repair_paths",
                self.stats.repair_paths - repaired_before,
            );
        }
        self.augment(s, t);
        let delta = self.stats.since(&snap);
        delta.attach(&mut sp);
        delta.record();
        self.flow_value(s)
    }

    /// Cancel the excess of every overflowing arc (`flow > cap` after a
    /// capacity reduction) along paths of the flow decomposition: an
    /// `s → u → e → v → t` path when the arc carries path flow, the
    /// containing cycle otherwise. Leaves a valid (conservation-respecting,
    /// capacity-feasible) flow. Only the arcs the dirty list remembers can
    /// overflow (see [`FlowNetwork::set_capacity`]), so the repair visits
    /// those and nothing else — when no capacity dropped below its routed
    /// flow this is free.
    fn repair_overflows(&mut self, s: usize, t: usize) {
        let dirty = std::mem::take(&mut self.overflowed);
        for id in dirty {
            loop {
                let excess = self.edges[id].flow.clone() - self.edges[id].cap.clone();
                if excess <= self.eps {
                    break;
                }
                let u = self.edges[id ^ 1].to;
                let v = self.edges[id].to;
                // Walk the flow backwards u → s and forwards v → t. Both
                // exist when the arc carries path flow (conservation);
                // otherwise the arc sits on a flow cycle, and the forward
                // walk from v reaches u instead.
                let back = self.flow_path(u, s, Dir::Backward);
                let fwd = self.flow_path(v, t, Dir::Forward);
                let mut path = match (back, fwd) {
                    (Some(b), Some(f)) => {
                        let mut p: Vec<usize> = b.into_iter().rev().collect();
                        p.push(id);
                        p.extend(f);
                        p
                    }
                    _ => {
                        let cycle = self
                            .flow_path(v, u, Dir::Forward)
                            .expect("an overflowing arc off every s-t path lies on a flow cycle");
                        let mut p = vec![id];
                        p.extend(cycle);
                        p
                    }
                };
                // Cancel the bottleneck (capped by the excess) everywhere
                // on the path/cycle.
                let mut amount = excess;
                for &eid in &path {
                    amount = amount.min_of(self.edges[eid].flow.clone());
                }
                debug_assert!(amount > self.eps, "flow paths carry positive flow");
                for eid in path.drain(..) {
                    self.edges[eid].flow = self.edges[eid].flow.clone() - amount.clone();
                    self.edges[eid ^ 1].flow = self.edges[eid ^ 1].flow.clone() + amount.clone();
                }
                self.stats.repair_paths += 1;
            }
        }
    }

    /// BFS along arcs carrying positive flow, from `from` to `to`;
    /// `Backward` walks against the arc direction (predecessors in the
    /// flow decomposition). Returns the forward-edge ids of the path in
    /// walk order, or `None` when unreachable.
    fn flow_path(&self, from: usize, to: usize, dir: Dir) -> Option<Vec<usize>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut via: Vec<Option<usize>> = vec![None; self.adj.len()];
        let mut seen = vec![false; self.adj.len()];
        seen[from] = true;
        let mut q = VecDeque::from([from]);
        while let Some(node) = q.pop_front() {
            for &eid in &self.adj[node] {
                // Forward walk uses forward arcs (even ids) out of `node`;
                // backward walk uses the reverse views (odd ids), whose
                // forward twin points *into* `node`.
                let fwd_id = eid & !1;
                let ok = match dir {
                    Dir::Forward => eid % 2 == 0,
                    Dir::Backward => eid % 2 == 1,
                };
                if !ok || self.edges[fwd_id].flow <= self.eps {
                    continue;
                }
                let next = self.edges[eid].to;
                if seen[next] {
                    continue;
                }
                seen[next] = true;
                via[next] = Some(eid);
                if next == to {
                    let mut path = Vec::new();
                    let mut at = to;
                    while at != from {
                        let eid = via[at].expect("walked via");
                        path.push(eid & !1);
                        at = self.edges[eid ^ 1].to;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(next);
            }
        }
        None
    }

    /// The Dinic phase loop: build BFS level graphs and push blocking
    /// flows until the sink is unreachable. Starts from whatever flow the
    /// network currently carries (zero after a build — the cold path; a
    /// repaired previous solve — the warm path).
    fn augment(&mut self, s: usize, t: usize) {
        let n = self.adj.len();
        loop {
            // BFS level graph.
            self.stats.phases += 1;
            let mut phase_sp = malleable_trace::span("flow.dinic_phase");
            let augmented_before = self.stats.augmentations;
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut q = VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid];
                    if level[e.to] == usize::MAX && self.residual(eid) > self.eps {
                        level[e.to] = level[u] + 1;
                        q.push_back(e.to);
                    }
                }
            }
            if level[t] == usize::MAX {
                return;
            }
            // DFS blocking flow with iteration pointers. `limit = None`
            // means unbounded (the generic stand-in for +∞).
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, None, &level, &mut it);
                if pushed <= self.eps {
                    break;
                }
                self.stats.augmentations += 1;
            }
            phase_sp.arg("augmentations", self.stats.augmentations - augmented_before);
        }
    }

    fn dfs(
        &mut self,
        u: usize,
        t: usize,
        limit: Option<S>,
        level: &[usize],
        it: &mut [usize],
    ) -> S {
        if u == t {
            return limit.expect("sink reached through at least one finite-capacity edge");
        }
        while it[u] < self.adj[u].len() {
            let eid = self.adj[u][it[u]];
            let to = self.edges[eid].to;
            if level[to] == level[u] + 1 && self.residual(eid) > self.eps {
                let next_limit = match &limit {
                    Some(l) => l.clone().min_of(self.residual(eid)),
                    None => self.residual(eid),
                };
                let pushed = self.dfs(to, t, Some(next_limit), level, it);
                if pushed > self.eps {
                    self.edges[eid].flow = self.edges[eid].flow.clone() + pushed.clone();
                    self.edges[eid ^ 1].flow = self.edges[eid ^ 1].flow.clone() - pushed.clone();
                    return pushed;
                }
            }
            it[u] += 1;
        }
        S::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2, 1e-12);
        g.add_edge(0, 1, 5.0);
        assert!(close(g.max_flow(0, 1), 5.0));
    }

    #[test]
    fn series_takes_min() {
        let mut g = FlowNetwork::new(3, 1e-12);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 3.0);
        assert!(close(g.max_flow(0, 2), 3.0));
    }

    #[test]
    fn parallel_adds() {
        let mut g = FlowNetwork::new(2, 1e-12);
        g.add_edge(0, 1, 2.0);
        g.add_edge(0, 1, 3.5);
        assert!(close(g.max_flow(0, 1), 5.5));
    }

    #[test]
    fn classic_diamond_with_cross_edge() {
        // s→a (10), s→b (10), a→b (1), a→t (4), b→t (9) ⇒ max flow 13.
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 10.0);
        g.add_edge(0, 2, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(1, 3, 4.0);
        g.add_edge(2, 3, 9.0);
        assert!(close(g.max_flow(0, 3), 13.0));
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowNetwork::new(3, 1e-12);
        g.add_edge(0, 1, 5.0);
        assert!(close(g.max_flow(0, 2), 0.0));
    }

    #[test]
    fn flow_on_reports_per_edge_routing() {
        let mut g = FlowNetwork::new(3, 1e-12);
        let a = g.add_edge(0, 1, 4.0);
        let b = g.add_edge(1, 2, 2.0);
        g.max_flow(0, 2);
        assert!(close(g.flow_on(a), 2.0));
        assert!(close(g.flow_on(b), 2.0));
    }

    #[test]
    fn fractional_capacities() {
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 0.3);
        g.add_edge(0, 2, 0.7);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 3, 0.5);
        assert!(close(g.max_flow(0, 3), 0.8));
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = FlowNetwork::new(1, 1e-12);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(0, a, 1.0);
        g.add_edge(a, b, 1.0);
        assert!(close(g.max_flow(0, b), 1.0));
        assert_eq!(g.n_nodes(), 3);
    }

    #[test]
    fn exact_max_flow_is_exact() {
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        // Same diamond as above, solved with eps = 0: the answer is the
        // integer 13, exactly.
        let mut g = FlowNetwork::<Rational>::new(4, Rational::from_int(0));
        g.add_edge(0, 1, q(10.0));
        g.add_edge(0, 2, q(10.0));
        g.add_edge(1, 2, q(1.0));
        g.add_edge(1, 3, q(4.0));
        g.add_edge(2, 3, q(9.0));
        assert_eq!(g.max_flow(0, 3), Rational::from_int(13));
        // Fractional capacities stay exact, too.
        let mut h = FlowNetwork::<Rational>::new(4, Rational::from_int(0));
        h.add_edge(0, 1, q(0.3));
        h.add_edge(0, 2, q(0.7));
        h.add_edge(1, 3, q(1.0));
        h.add_edge(2, 3, q(0.5));
        assert_eq!(h.max_flow(0, 3), q(0.3) + q(0.5));
    }

    #[test]
    fn min_cut_side_matches_bottleneck() {
        // s→a (10), a→b (1), b→t (10): the bottleneck is a→b, so the
        // source side of the min cut is exactly {s, a}.
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 10.0);
        assert!(close(g.max_flow(0, 3), 1.0));
        assert_eq!(g.min_cut_source_side(0), vec![true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "bad node")]
    fn bad_node_panics() {
        let mut g = FlowNetwork::new(2, 1e-12);
        g.add_edge(0, 7, 1.0);
    }

    #[test]
    fn warm_resolve_after_capacity_increase_matches_cold() {
        // Monotone probe: grow the bottleneck, warm-solve, compare with a
        // cold network of the final capacities.
        let mut g = FlowNetwork::new(4, 1e-12);
        let sa = g.add_edge(0, 1, 10.0);
        let ab = g.add_edge(1, 2, 1.0);
        let bt = g.add_edge(2, 3, 10.0);
        assert!(close(g.max_flow(0, 3), 1.0));
        g.set_capacity(ab, 6.0);
        assert!(close(g.max_flow_warm(0, 3), 6.0));
        assert!(close(g.flow_on(sa), 6.0));
        assert!(close(g.flow_on(bt), 6.0));
        // The min cut moved with the capacities.
        assert_eq!(g.min_cut_source_side(0), vec![true, true, false, false]);
    }

    #[test]
    fn warm_resolve_after_capacity_decrease_repairs_overflow() {
        // Shrink a saturated arc below its routed flow: the repair must
        // cancel the excess along the decomposition path, then the value
        // is the new max flow.
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 10.0);
        let ab = g.add_edge(1, 2, 7.0);
        g.add_edge(2, 3, 10.0);
        assert!(close(g.max_flow(0, 3), 7.0));
        g.set_capacity(ab, 2.5);
        assert!(close(g.max_flow_warm(0, 3), 2.5));
        assert!(close(g.flow_on(ab), 2.5));
        assert!(g.stats().repair_paths >= 1);
    }

    #[test]
    fn warm_resolve_with_parallel_routes_rebalances() {
        // Two disjoint routes; kill one after solving — flow must reroute
        // only as far as capacities allow.
        let mut g = FlowNetwork::new(6, 1e-12);
        g.add_edge(0, 1, 4.0); // s→a
        g.add_edge(1, 5, 4.0); // a→t
        let sb = g.add_edge(0, 2, 3.0); // s→b
        g.add_edge(2, 5, 3.0); // b→t
        assert!(close(g.max_flow(0, 5), 7.0));
        g.set_capacity(sb, 0.0);
        assert!(close(g.max_flow_warm(0, 5), 4.0));
        assert!(close(g.flow_on(sb), 0.0));
        // Re-open wider than before plus widen the tail.
        g.set_capacity(sb, 5.0);
        assert!(close(g.max_flow_warm(0, 5), 7.0));
    }

    #[test]
    fn warm_equals_cold_exactly_on_rationals() {
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        let zero = Rational::from_int(0);
        // Diamond with a cross edge; probe a monotone capacity sequence on
        // the two sink arcs and compare warm vs cold bit-exactly.
        let build = |at: f64, bt: f64| {
            let mut g = FlowNetwork::<Rational>::new(4, zero.clone());
            g.add_edge(0, 1, q(10.0));
            g.add_edge(0, 2, q(10.0));
            g.add_edge(1, 2, q(1.0));
            g.add_edge(1, 3, q(at));
            g.add_edge(2, 3, q(bt));
            g
        };
        let mut warm = build(4.0, 9.0);
        let mut cold0 = build(4.0, 9.0);
        assert_eq!(warm.max_flow(0, 3), cold0.max_flow(0, 3));
        for (at, bt) in [(6.0, 9.0), (6.0, 11.0), (2.0, 3.0), (20.0, 20.0)] {
            warm.set_capacity(6, q(at));
            warm.set_capacity(8, q(bt));
            let wv = warm.max_flow_warm(0, 3);
            let mut cold = build(at, bt);
            let cv = cold.max_flow(0, 3);
            assert_eq!(wv, cv, "warm vs cold at ({at}, {bt})");
            assert_eq!(
                warm.min_cut_source_side(0),
                cold.min_cut_source_side(0),
                "minimal min cut is unique per max flow — must agree at ({at}, {bt})"
            );
        }
    }

    #[test]
    fn capacity_growth_skips_repair_entirely() {
        // Monotone growth never dirties an edge, so the warm path pays no
        // repair work at all — the fast path the parametric probes ride.
        let mut g = FlowNetwork::new(4, 1e-12);
        let sa = g.add_edge(0, 1, 10.0);
        let ab = g.add_edge(1, 2, 1.0);
        let bt = g.add_edge(2, 3, 10.0);
        assert!(close(g.max_flow(0, 3), 1.0));
        let snap = g.stats();
        g.set_capacity(sa, 12.0);
        g.set_capacity(ab, 4.0);
        g.set_capacity(bt, 12.0);
        assert!(close(g.max_flow_warm(0, 3), 4.0));
        assert_eq!(g.stats().since(&snap).repair_paths, 0);
        // A decrease below the routed flow dirties exactly one edge and
        // repairs it.
        let snap = g.stats();
        g.set_capacity(ab, 0.5);
        assert!(close(g.max_flow_warm(0, 3), 0.5));
        assert!(g.stats().since(&snap).repair_paths >= 1);
    }

    #[test]
    fn stats_count_phases_and_augmentations() {
        let mut g = FlowNetwork::new(3, 1e-12);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 3.0);
        assert_eq!(g.stats(), FlowStats::default());
        g.max_flow(0, 2);
        let s = g.stats();
        assert!(s.phases >= 2, "one augmenting phase plus the empty check");
        assert!(s.augmentations >= 1);
        assert_eq!(s.repair_paths, 0);
        let snap = g.stats();
        // An unchanged warm re-solve only pays the empty phase check.
        g.max_flow_warm(0, 2);
        let delta = g.stats().since(&snap);
        assert_eq!(delta.phases, 1);
        assert_eq!(delta.augmentations, 0);
        g.reset_stats();
        assert_eq!(g.stats(), FlowStats::default());
    }

    #[test]
    fn reset_reuses_the_network_across_solves() {
        let mut g = FlowNetwork::new(4, 1e-12);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 10.0);
        assert!(close(g.max_flow(0, 3), 1.0));
        // Rebuild a different (smaller, then larger) topology in place.
        g.reset(2, 1e-12);
        g.add_edge(0, 1, 2.5);
        assert!(close(g.max_flow(0, 1), 2.5));
        g.reset(5, 1e-12);
        g.add_edge(0, 4, 7.0);
        g.add_edge(4, 3, 3.0);
        assert!(close(g.max_flow(0, 3), 3.0));
        assert_eq!(g.n_nodes(), 5);
    }
}
