//! **Greedy(σ)** schedules (Algorithm 3 of the paper).
//!
//! Given a task order σ, each task in turn grabs *as much of the remaining
//! machine as it can, as early as it can*: its instantaneous rate is
//! `min(δᵢ, available(t))` from `t = 0` until its volume completes, after
//! which the availability profile is updated for the next task.
//!
//! Theorem 11 proves every optimal schedule is greedy on instances with
//! homogeneous weights and `δᵢ > P/2`; Conjecture 12 (backed by the
//! paper's 10,000-instance experiment, reproduced in this repository's
//! harness) says some greedy schedule is optimal on *every* instance.

use crate::error::ScheduleError;
use crate::instance::{Instance, TaskId};
use crate::schedule::step::{Segment, StepSchedule};
use numkit::Tolerance;

/// Remaining-capacity profile: piecewise-constant availability over
/// `[0, horizon)` plus implicit full capacity `P` afterwards.
#[derive(Debug, Clone)]
pub struct AvailProfile {
    p: f64,
    /// `(start, end, available)` with contiguous intervals from 0.
    intervals: Vec<(f64, f64, f64)>,
}

impl AvailProfile {
    /// Fresh machine: everything available.
    pub fn new(p: f64) -> Self {
        AvailProfile {
            p,
            intervals: Vec::new(),
        }
    }

    /// Availability at time `t`.
    pub fn available_at(&self, t: f64) -> f64 {
        for &(s, e, a) in &self.intervals {
            if s <= t && t < e {
                return a;
            }
        }
        self.p
    }

    /// End of the explicitly tracked region.
    pub fn horizon(&self) -> f64 {
        self.intervals.last().map_or(0.0, |&(_, e, _)| e)
    }

    /// Greedily allocate a task with cap `delta` and work `volume`:
    /// rate `min(delta, available(t))` from `t = 0` until completion.
    /// Returns the task's segments (gaps skipped) and its completion time,
    /// and subtracts the consumed capacity from the profile.
    pub fn allocate(&mut self, delta: f64, volume: f64, tol: Tolerance) -> (Vec<(f64, f64, f64)>, f64) {
        debug_assert!(delta > 0.0 && volume > 0.0);
        let cap = delta.min(self.p);
        let mut segs: Vec<(f64, f64, f64)> = Vec::new(); // (start, end, rate)
        let mut acc = 0.0f64;
        let slack = tol.slack(volume, 0.0);
        let completion;
        let mut consumed: Vec<(f64, f64, f64)> = Vec::new(); // for profile update
        // Walk explicit intervals, then the implicit tail.
        let mut idx = 0;
        let mut cursor = 0.0f64;
        loop {
            let (start, end, avail) = if idx < self.intervals.len() {
                let iv = self.intervals[idx];
                idx += 1;
                iv
            } else {
                // Implicit tail: full capacity, long enough to finish.
                let start = self.horizon().max(cursor);
                let rate = cap.min(self.p);
                debug_assert!(rate > 0.0);
                let need = (volume - acc).max(0.0) / rate;
                (start, start + need + 1.0, self.p)
            };
            cursor = end;
            let rate = cap.min(avail);
            if rate <= tol.abs {
                continue; // fully busy interval: the task waits
            }
            let span = end - start;
            let vol_here = rate * span;
            if acc + vol_here >= volume - slack {
                // Finishes inside this interval.
                let need = ((volume - acc) / rate).max(0.0);
                completion = start + need;
                if need > tol.abs {
                    segs.push((start, completion, rate));
                    consumed.push((start, completion, rate));
                }
                acc = volume;
                break;
            }
            acc += vol_here;
            segs.push((start, end, rate));
            consumed.push((start, end, rate));
        }
        debug_assert!(acc >= volume - slack);
        self.subtract(&consumed, completion, tol);
        (segs, completion)
    }

    /// Subtract consumed `(start, end, rate)` spans and re-normalize,
    /// extending the explicit region to at least `up_to`.
    fn subtract(&mut self, consumed: &[(f64, f64, f64)], up_to: f64, tol: Tolerance) {
        // Collect all boundaries.
        let mut cuts: Vec<f64> = vec![0.0];
        for &(s, e, _) in &self.intervals {
            cuts.push(s);
            cuts.push(e);
        }
        for &(s, e, _) in consumed {
            cuts.push(s);
            cuts.push(e);
        }
        cuts.push(up_to);
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| tol.eq(*a, *b));

        let mut next: Vec<(f64, f64, f64)> = Vec::with_capacity(cuts.len());
        for w in cuts.windows(2) {
            let (s, e) = (w[0], w[1]);
            if e - s <= tol.abs {
                continue;
            }
            let mid = 0.5 * (s + e);
            let mut avail = self.available_at(mid);
            for &(cs, ce, r) in consumed {
                if cs <= mid && mid < ce {
                    avail -= r;
                }
            }
            debug_assert!(
                avail >= -tol.slack(self.p, 0.0) * 16.0,
                "greedy consumed more than available: {avail}"
            );
            let avail = avail.max(0.0);
            match next.last_mut() {
                Some(prev) if tol.eq(prev.2, avail) && tol.eq(prev.1, s) => prev.1 = e,
                _ => next.push((s, e, avail)),
            }
        }
        // Drop a trailing full-capacity run (it equals the implicit tail).
        while let Some(&(s, _, a)) = next.last() {
            if tol.eq(a, self.p) {
                next.pop();
                let _ = s;
            } else {
                break;
            }
        }
        self.intervals = next;
    }
}

/// Run Greedy(σ) and return the per-task step schedule.
///
/// ```
/// use malleable_core::algos::greedy::greedy_schedule;
/// use malleable_core::instance::{Instance, TaskId};
///
/// let inst = Instance::builder(4.0)
///     .task(6.0, 1.0, 3.0)
///     .task(6.0, 1.0, 4.0)
///     .build()
///     .unwrap();
/// let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1)]).unwrap();
/// // T0 runs flat-out at 3; T1 takes the leftover 1, then expands to 4.
/// assert_eq!(s.completion_times(), vec![2.0, 3.0]);
/// ```
///
/// # Errors
/// [`ScheduleError::InvalidInstance`] on malformed instances or non-permutation orders.
pub fn greedy_schedule(instance: &Instance, order: &[TaskId]) -> Result<StepSchedule, ScheduleError> {
    instance.validate()?;
    if !crate::algos::orders::is_permutation(order, instance.n()) {
        return Err(ScheduleError::InvalidInstance {
            reason: format!("order is not a permutation of 0..{}", instance.n()),
        });
    }
    let tol = Tolerance::default().scaled(1.0 + instance.n() as f64);
    let mut profile = AvailProfile::new(instance.p);
    let mut out = StepSchedule::empty(instance.p, instance.n());
    for &id in order {
        let t = instance.task(id);
        let (segs, _c) = profile.allocate(t.delta, t.volume, tol);
        out.allocs[id.0] = segs
            .into_iter()
            .map(|(s, e, r)| Segment {
                start: s,
                end: e,
                procs: r,
            })
            .collect();
    }
    Ok(out)
}

/// Greedy cost `Σ wᵢCᵢ` for an order.
pub fn greedy_cost(instance: &Instance, order: &[TaskId]) -> Result<f64, ScheduleError> {
    Ok(greedy_schedule(instance, order)?.weighted_completion_cost(instance))
}

/// Best greedy schedule over the standard heuristic orders
/// (Smith, δ-descending/ascending, height, weighted height, input order).
/// Returns `(label, order, cost)` of the winner.
pub fn best_heuristic_greedy(
    instance: &Instance,
) -> Result<(&'static str, Vec<TaskId>, f64), ScheduleError> {
    let mut best: Option<(&'static str, Vec<TaskId>, f64)> = None;
    for (name, order) in crate::algos::orders::heuristic_orders(instance) {
        let cost = greedy_cost(instance, &order)?;
        if best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
            best = Some((name, order, cost));
        }
    }
    Ok(best.expect("at least one heuristic order"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::orders::smith_order;

    fn tol() -> Tolerance {
        Tolerance::default().scaled(10.0)
    }

    #[test]
    fn single_task_runs_flat_out() {
        let inst = Instance::builder(4.0).task(6.0, 1.0, 3.0).build().unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0)]).unwrap();
        s.validate(&inst).unwrap();
        assert_eq!(s.completion_times(), vec![2.0]);
        assert_eq!(s.allocs[0].len(), 1);
        assert_eq!(s.allocs[0][0].procs, 3.0);
    }

    #[test]
    fn second_task_takes_leftovers_then_expands() {
        // P=4: T0 (δ=3, V=6) runs [0,2] at 3. T1 (δ=4, V=6): rate 1 on
        // [0,2] (leftover), then rate 4 → finishes at 2 + 4/4 = 3.
        let inst = Instance::builder(4.0)
            .task(6.0, 1.0, 3.0)
            .task(6.0, 1.0, 4.0)
            .build()
            .unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1)]).unwrap();
        s.validate(&inst).unwrap();
        let cs = s.completion_times();
        assert!((cs[0] - 2.0).abs() < 1e-9);
        assert!((cs[1] - 3.0).abs() < 1e-9);
        assert_eq!(s.allocs[1].len(), 2);
        assert!((s.allocs[1][0].procs - 1.0).abs() < 1e-9);
        assert!((s.allocs[1][1].procs - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fully_blocked_task_waits() {
        // P=1: T0 (δ=1) monopolizes [0,1]; T1 must wait (gap) then run.
        let inst = Instance::builder(1.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .build()
            .unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1)]).unwrap();
        s.validate(&inst).unwrap();
        assert_eq!(s.completion_times(), vec![1.0, 2.0]);
        assert_eq!(s.allocs[1].len(), 1);
        assert_eq!(s.allocs[1][0].start, 1.0);
    }

    #[test]
    fn partial_block_produces_three_phases() {
        // P=2: T0 (δ=2,V=2) runs [0,1] at 2 → T1 (δ=1,V=2) waits, then
        // runs [1,3] at 1.
        let inst = Instance::builder(2.0)
            .task(2.0, 1.0, 2.0)
            .task(2.0, 1.0, 1.0)
            .build()
            .unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1)]).unwrap();
        let cs = s.completion_times();
        assert!((cs[1] - 3.0).abs() < 1e-9);

        // Reverse order: T1 runs [0,2] at 1; T0 gets 1 proc on [0,2]
        // (δ=2 but only 1 free)… it finishes exactly at 2.
        let s2 = greedy_schedule(&inst, &[TaskId(1), TaskId(0)]).unwrap();
        s2.validate(&inst).unwrap();
        let cs2 = s2.completion_times();
        assert!((cs2[0] - 2.0).abs() < 1e-9);
        assert!((cs2[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_matches_smith_on_uniprocessor_tasks() {
        // δᵢ = 1, P = 1: greedy(smith) = WSPT, the known optimum.
        let inst = Instance::builder(1.0)
            .task(2.0, 1.0, 1.0)
            .task(1.0, 2.0, 1.0)
            .task(1.5, 1.5, 1.0)
            .build()
            .unwrap();
        let order = smith_order(&inst);
        let cost = greedy_cost(&inst, &order).unwrap();
        // WSPT: T1 (0.5), T2 (1), T0 (2) → C = 1, 2.5, 4.5 →
        // cost = 2·1 + 1.5·2.5 + 1·4.5 = 10.25.
        assert!((cost - 10.25).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_orders() {
        let inst = Instance::builder(1.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .build()
            .unwrap();
        assert!(greedy_schedule(&inst, &[TaskId(0)]).is_err());
        assert!(greedy_schedule(&inst, &[TaskId(0), TaskId(0)]).is_err());
    }

    #[test]
    fn best_heuristic_returns_minimum() {
        let inst = Instance::builder(2.0)
            .task(2.0, 1.0, 2.0)
            .task(2.0, 1.0, 1.0)
            .task(0.5, 3.0, 1.0)
            .build()
            .unwrap();
        let (_, order, cost) = best_heuristic_greedy(&inst).unwrap();
        for (_, o) in crate::algos::orders::heuristic_orders(&inst) {
            assert!(greedy_cost(&inst, &o).unwrap() >= cost - 1e-9);
        }
        assert!(crate::algos::orders::is_permutation(&order, 3));
    }

    #[test]
    fn profile_bookkeeping_stays_consistent() {
        // Drive the profile through several allocations and verify
        // availability never goes negative and schedule stays valid.
        let inst = Instance::builder(3.0)
            .tasks([
                (2.0, 1.0, 2.0),
                (1.0, 1.0, 3.0),
                (4.0, 1.0, 1.0),
                (1.5, 1.0, 2.0),
                (0.7, 1.0, 3.0),
            ])
            .build()
            .unwrap();
        let order: Vec<TaskId> = (0..5).map(TaskId).collect();
        let s = greedy_schedule(&inst, &order).unwrap();
        s.validate(&inst).unwrap();
        let _ = tol();
    }

    #[test]
    fn greedy_produces_integer_rates_on_integer_instances() {
        // Availability is always P minus a sum of caps/availabilities that
        // started integral, so every rate stays integral (the paper notes
        // Greedy solves MWCT directly on integer instances).
        let inst = Instance::builder(5.0)
            .tasks([(3.0, 1.0, 2.0), (4.0, 1.0, 3.0), (2.0, 1.0, 4.0)])
            .build()
            .unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1), TaskId(2)]).unwrap();
        for segs in &s.allocs {
            for seg in segs {
                assert!((seg.procs - seg.procs.round()).abs() < 1e-9);
            }
        }
    }
}
