//! **Greedy(σ)** schedules (Algorithm 3 of the paper).
//!
//! Given a task order σ, each task in turn grabs *as much of the remaining
//! machine as it can, as early as it can*: its instantaneous rate is
//! `min(δᵢ, available(t))` from `t = 0` until its volume completes, after
//! which the availability profile is updated for the next task.
//!
//! Theorem 11 proves every optimal schedule is greedy on instances with
//! homogeneous weights and `δᵢ > P/2`; Conjecture 12 (backed by the
//! paper's 10,000-instance experiment, reproduced in this repository's
//! harness) says some greedy schedule is optimal on *every* instance.
//!
//! Generic over the scalar: the availability profile only adds, subtracts
//! and divides, so the exact instantiation reproduces the paper's symbolic
//! greedy runs (Conjecture 13 is checked through this code path).

use crate::error::ScheduleError;
use crate::instance::{Instance, TaskId};
use crate::schedule::step::{Segment, StepSchedule};
use numkit::{Scalar, Tolerance};

/// Remaining-capacity profile: piecewise-constant availability over
/// `[0, horizon)` plus implicit full capacity `P` afterwards.
#[derive(Debug, Clone)]
pub struct AvailProfile<S = f64> {
    p: S,
    /// `(start, end, available)` with contiguous intervals from 0.
    intervals: Vec<(S, S, S)>,
}

impl<S: Scalar> AvailProfile<S> {
    /// Fresh machine: everything available.
    pub fn new(p: S) -> Self {
        AvailProfile {
            p,
            intervals: Vec::new(),
        }
    }

    /// Availability at time `t`.
    pub fn available_at(&self, t: &S) -> S {
        for (s, e, a) in &self.intervals {
            if *s <= *t && *t < *e {
                return a.clone();
            }
        }
        self.p.clone()
    }

    /// End of the explicitly tracked region.
    pub fn horizon(&self) -> S {
        self.intervals
            .last()
            .map_or(S::zero(), |(_, e, _)| e.clone())
    }

    /// Greedily allocate a task with cap `delta` and work `volume`:
    /// rate `min(delta, available(t))` from `t = 0` until completion.
    /// Returns the task's segments (gaps skipped) and its completion time,
    /// and subtracts the consumed capacity from the profile.
    pub fn allocate(&mut self, delta: S, volume: S, tol: &Tolerance<S>) -> (Vec<(S, S, S)>, S) {
        debug_assert!(delta.is_positive() && volume.is_positive());
        let cap = delta.min_of(self.p.clone());
        let mut segs: Vec<(S, S, S)> = Vec::new(); // (start, end, rate)
        let mut acc = S::zero();
        let slack = tol.slack(volume.clone(), S::zero());
        let completion;
        // Consumed spans, kept for the profile update after the walk.
        let mut consumed: Vec<(S, S, S)> = Vec::new();
        // Walk explicit intervals, then the implicit tail.
        let mut idx = 0;
        let mut cursor = S::zero();
        loop {
            let (start, end, avail) = if idx < self.intervals.len() {
                let iv = self.intervals[idx].clone();
                idx += 1;
                iv
            } else {
                // Implicit tail: full capacity, long enough to finish.
                let start = self.horizon().max_of(cursor.clone());
                let rate = cap.clone().min_of(self.p.clone());
                debug_assert!(rate.is_positive());
                let need = (volume.clone() - acc.clone()).max_of(S::zero()) / rate;
                (start.clone(), start + need + S::one(), self.p.clone())
            };
            cursor = end.clone();
            let rate = cap.clone().min_of(avail);
            if rate <= tol.abs {
                continue; // fully busy interval: the task waits
            }
            let span = end.clone() - start.clone();
            let vol_here = rate.clone() * span;
            if acc.clone() + vol_here.clone() + slack.clone() >= volume {
                // Finishes inside this interval.
                let need = ((volume.clone() - acc.clone()) / rate.clone()).max_of(S::zero());
                completion = start.clone() + need;
                if completion.clone() - start.clone() > tol.abs {
                    segs.push((start.clone(), completion.clone(), rate.clone()));
                    consumed.push((start, completion.clone(), rate));
                }
                break;
            }
            acc = acc + vol_here;
            segs.push((start.clone(), end.clone(), rate.clone()));
            consumed.push((start, end, rate));
        }
        self.subtract(&consumed, completion.clone(), tol);
        (segs, completion)
    }

    /// Subtract consumed `(start, end, rate)` spans and re-normalize,
    /// extending the explicit region to at least `up_to`.
    fn subtract(&mut self, consumed: &[(S, S, S)], up_to: S, tol: &Tolerance<S>) {
        // Collect all boundaries.
        let mut cuts: Vec<S> = vec![S::zero()];
        for (s, e, _) in &self.intervals {
            cuts.push(s.clone());
            cuts.push(e.clone());
        }
        for (s, e, _) in consumed {
            cuts.push(s.clone());
            cuts.push(e.clone());
        }
        cuts.push(up_to);
        cuts.sort_by(S::total_cmp_s);
        cuts.dedup_by(|a, b| tol.eq(a.clone(), b.clone()));

        let half = S::from_f64(0.5);
        let mut next: Vec<(S, S, S)> = Vec::with_capacity(cuts.len());
        for w in cuts.windows(2) {
            let (s, e) = (&w[0], &w[1]);
            if e.clone() - s.clone() <= tol.abs {
                continue;
            }
            let mid = half.clone() * (s.clone() + e.clone());
            let mut avail = self.available_at(&mid);
            for (cs, ce, r) in consumed {
                if *cs <= mid && mid < *ce {
                    avail = avail - r.clone();
                }
            }
            debug_assert!(
                avail.clone() + tol.slack(self.p.clone(), S::zero()) * S::from_int(16) >= S::zero(),
                "greedy consumed more than available: {avail:?}"
            );
            let avail = avail.max_of(S::zero());
            match next.last_mut() {
                Some(prev)
                    if tol.eq(prev.2.clone(), avail.clone())
                        && tol.eq(prev.1.clone(), s.clone()) =>
                {
                    prev.1 = e.clone()
                }
                _ => next.push((s.clone(), e.clone(), avail)),
            }
        }
        // Drop a trailing full-capacity run (it equals the implicit tail).
        while let Some((_, _, a)) = next.last() {
            if tol.eq(a.clone(), self.p.clone()) {
                next.pop();
            } else {
                break;
            }
        }
        self.intervals = next;
    }
}

/// Run Greedy(σ) and return the per-task step schedule.
///
/// ```
/// use malleable_core::algos::greedy::greedy_schedule;
/// use malleable_core::instance::{Instance, TaskId};
///
/// let inst = Instance::builder(4.0)
///     .task(6.0, 1.0, 3.0)
///     .task(6.0, 1.0, 4.0)
///     .build()
///     .unwrap();
/// let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1)]).unwrap();
/// // T0 runs flat-out at 3; T1 takes the leftover 1, then expands to 4.
/// assert_eq!(s.completion_times(), vec![2.0, 3.0]);
/// ```
///
/// # Errors
/// [`ScheduleError::InvalidInstance`] on malformed instances or non-permutation orders.
pub fn greedy_schedule<S: Scalar>(
    instance: &Instance<S>,
    order: &[TaskId],
) -> Result<StepSchedule<S>, ScheduleError> {
    instance.validate()?;
    // The availability profile shares *rates*, which is only sound on
    // identical/uniform machines; heterogeneous greedy is
    // `algos::related::greedy_related`.
    instance.require_uniform_machine("Greedy(σ)")?;
    if !crate::algos::orders::is_permutation(order, instance.n()) {
        return Err(ScheduleError::InvalidInstance {
            reason: format!("order is not a permutation of 0..{}", instance.n()),
        });
    }
    let tol = Tolerance::<S>::for_instance(instance.n());
    let mut profile = AvailProfile::new(instance.p.clone());
    let mut out = StepSchedule::empty(instance.p.clone(), instance.n());
    for &id in order {
        let t = instance.task(id);
        let (segs, _c) = profile.allocate(t.delta.clone(), t.volume.clone(), &tol);
        out.allocs[id.0] = segs
            .into_iter()
            .map(|(s, e, r)| Segment {
                start: s,
                end: e,
                procs: r,
            })
            .collect();
    }
    Ok(out)
}

/// Greedy cost `Σ wᵢCᵢ` for an order.
pub fn greedy_cost<S: Scalar>(
    instance: &Instance<S>,
    order: &[TaskId],
) -> Result<S, ScheduleError> {
    Ok(greedy_schedule(instance, order)?.weighted_completion_cost(instance))
}

/// Best greedy schedule over the standard heuristic orders
/// (Smith, δ-descending/ascending, height, weighted height, input order).
/// Returns `(label, order, cost)` of the winner.
pub fn best_heuristic_greedy<S: Scalar>(
    instance: &Instance<S>,
) -> Result<(&'static str, Vec<TaskId>, S), ScheduleError> {
    let mut best: Option<(&'static str, Vec<TaskId>, S)> = None;
    for (name, order) in crate::algos::orders::heuristic_orders(instance) {
        let cost = greedy_cost(instance, &order)?;
        if best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
            best = Some((name, order, cost));
        }
    }
    Ok(best.expect("at least one heuristic order"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::orders::smith_order;

    fn tol() -> Tolerance {
        Tolerance::default().scaled(10.0)
    }

    #[test]
    fn single_task_runs_flat_out() {
        let inst = Instance::builder(4.0).task(6.0, 1.0, 3.0).build().unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0)]).unwrap();
        s.validate(&inst).unwrap();
        assert_eq!(s.completion_times(), vec![2.0]);
        assert_eq!(s.allocs[0].len(), 1);
        assert_eq!(s.allocs[0][0].procs, 3.0);
    }

    #[test]
    fn second_task_takes_leftovers_then_expands() {
        // P=4: T0 (δ=3, V=6) runs [0,2] at 3. T1 (δ=4, V=6): rate 1 on
        // [0,2] (leftover), then rate 4 → finishes at 2 + 4/4 = 3.
        let inst = Instance::builder(4.0)
            .task(6.0, 1.0, 3.0)
            .task(6.0, 1.0, 4.0)
            .build()
            .unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1)]).unwrap();
        s.validate(&inst).unwrap();
        let cs = s.completion_times();
        assert!((cs[0] - 2.0).abs() < 1e-9);
        assert!((cs[1] - 3.0).abs() < 1e-9);
        assert_eq!(s.allocs[1].len(), 2);
        assert!((s.allocs[1][0].procs - 1.0).abs() < 1e-9);
        assert!((s.allocs[1][1].procs - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fully_blocked_task_waits() {
        // P=1: T0 (δ=1) monopolizes [0,1]; T1 must wait (gap) then run.
        let inst = Instance::builder(1.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .build()
            .unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1)]).unwrap();
        s.validate(&inst).unwrap();
        assert_eq!(s.completion_times(), vec![1.0, 2.0]);
        assert_eq!(s.allocs[1].len(), 1);
        assert_eq!(s.allocs[1][0].start, 1.0);
    }

    #[test]
    fn partial_block_produces_three_phases() {
        // P=2: T0 (δ=2,V=2) runs [0,1] at 2 → T1 (δ=1,V=2) waits, then
        // runs [1,3] at 1.
        let inst = Instance::builder(2.0)
            .task(2.0, 1.0, 2.0)
            .task(2.0, 1.0, 1.0)
            .build()
            .unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1)]).unwrap();
        let cs = s.completion_times();
        assert!((cs[1] - 3.0).abs() < 1e-9);

        // Reverse order: T1 runs [0,2] at 1; T0 gets 1 proc on [0,2]
        // (δ=2 but only 1 free)… it finishes exactly at 2.
        let s2 = greedy_schedule(&inst, &[TaskId(1), TaskId(0)]).unwrap();
        s2.validate(&inst).unwrap();
        let cs2 = s2.completion_times();
        assert!((cs2[0] - 2.0).abs() < 1e-9);
        assert!((cs2[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_matches_smith_on_uniprocessor_tasks() {
        // δᵢ = 1, P = 1: greedy(smith) = WSPT, the known optimum.
        let inst = Instance::builder(1.0)
            .task(2.0, 1.0, 1.0)
            .task(1.0, 2.0, 1.0)
            .task(1.5, 1.5, 1.0)
            .build()
            .unwrap();
        let order = smith_order(&inst);
        let cost = greedy_cost(&inst, &order).unwrap();
        // WSPT: T1 (0.5), T2 (1), T0 (2) → C = 1, 2.5, 4.5 →
        // cost = 2·1 + 1.5·2.5 + 1·4.5 = 10.25.
        assert!((cost - 10.25).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_orders() {
        let inst = Instance::builder(1.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .build()
            .unwrap();
        assert!(greedy_schedule(&inst, &[TaskId(0)]).is_err());
        assert!(greedy_schedule(&inst, &[TaskId(0), TaskId(0)]).is_err());
    }

    #[test]
    fn best_heuristic_returns_minimum() {
        let inst = Instance::builder(2.0)
            .task(2.0, 1.0, 2.0)
            .task(2.0, 1.0, 1.0)
            .task(0.5, 3.0, 1.0)
            .build()
            .unwrap();
        let (_, order, cost) = best_heuristic_greedy(&inst).unwrap();
        for (_, o) in crate::algos::orders::heuristic_orders(&inst) {
            assert!(greedy_cost(&inst, &o).unwrap() >= cost - 1e-9);
        }
        assert!(crate::algos::orders::is_permutation(&order, 3));
    }

    #[test]
    fn profile_bookkeeping_stays_consistent() {
        // Drive the profile through several allocations and verify
        // availability never goes negative and schedule stays valid.
        let inst = Instance::builder(3.0)
            .tasks([
                (2.0, 1.0, 2.0),
                (1.0, 1.0, 3.0),
                (4.0, 1.0, 1.0),
                (1.5, 1.0, 2.0),
                (0.7, 1.0, 3.0),
            ])
            .build()
            .unwrap();
        let order: Vec<TaskId> = (0..5).map(TaskId).collect();
        let s = greedy_schedule(&inst, &order).unwrap();
        s.validate(&inst).unwrap();
        let _ = tol();
    }

    #[test]
    fn greedy_produces_integer_rates_on_integer_instances() {
        // Availability is always P minus a sum of caps/availabilities that
        // started integral, so every rate stays integral (the paper notes
        // Greedy solves MWCT directly on integer instances).
        let inst = Instance::builder(5.0)
            .tasks([(3.0, 1.0, 2.0), (4.0, 1.0, 3.0), (2.0, 1.0, 4.0)])
            .build()
            .unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1), TaskId(2)]).unwrap();
        for segs in &s.allocs {
            for seg in segs {
                assert!((seg.procs - seg.procs.round()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn exact_greedy_runs_exactly() {
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        // Same fixture as `second_task_takes_leftovers_then_expands`.
        let inst = Instance::<Rational>::builder(q(4.0))
            .task(q(6.0), q(1.0), q(3.0))
            .task(q(6.0), q(1.0), q(4.0))
            .build()
            .unwrap();
        let s = greedy_schedule(&inst, &[TaskId(0), TaskId(1)]).unwrap();
        s.validate(&inst).unwrap(); // zero tolerance
        assert_eq!(s.completion_times(), vec![q(2.0), q(3.0)]);
        assert_eq!(s.allocs[1][0].procs, q(1.0));
        assert_eq!(s.allocs[1][1].procs, q(4.0));
    }
}
