//! Scheduling algorithms for **related machines** (heterogeneous speeds)
//! — the entry points that stay exact when
//! [`MachineModel::Related`](crate::machine::MachineModel) carries
//! genuinely different speeds.
//!
//! The paper's rate-space algorithms (WDEQ's closed form, Water-Filling,
//! Greedy's availability profile) assume the feasible instantaneous rate
//! region is the box-and-simplex `{0 ≤ rᵢ ≤ δ̂ᵢ, Σ rᵢ ≤ P}`; on related
//! machines that region is the *polymatroid* of the speed profile, and
//! the box relaxation over-promises (two δ = 1 tasks on speeds (2, 1, 1)
//! cannot both run at rate 2). This module supplies the sound
//! replacements:
//!
//! * [`flow_witness`] — materialize a valid column schedule for any
//!   transport-feasible deadline vector, by reading the routed flow of
//!   the level network back out (the related analogue of Water-Filling's
//!   witness role, Theorem 8);
//! * [`min_lmax_flow`] — exact minimal `Lmax` with the transportation
//!   flow as both oracle and witness builder (used by `min_lmax` for
//!   heterogeneous instances, and unconditionally by the
//!   `lmax-parametric-related` policy so the identical/related code path
//!   is literally the same network);
//! * [`greedy_related`] — Greedy(σ) re-based on completion times: each
//!   task in σ-order receives the earliest completion time that keeps the
//!   prefix transport-feasible, found by the same violated-set Newton
//!   jumps as the parametric searches.
//!
//! Everything is generic over the scalar: on `bigratio::Rational` every
//! verdict, cut, constraint root and witness is exact and validates at
//! zero tolerance; unit-speed related machines reproduce the
//! identical-machine results bit-for-bit because the transportation
//! networks coincide structurally.

use crate::algos::parametric::{
    min_lmax_value, saturation_slack, set_capacity, snapped_interval_rates, violated_set_in, Probe,
    ProbeSession, ViolatedSet,
};
use crate::error::ScheduleError;
use crate::instance::{Instance, TaskId};
use crate::machine::{MachineModel, RankOracle};
use crate::schedule::column::{Column, ColumnSchedule};
use numkit::{Scalar, Tolerance};

/// Build a valid [`ColumnSchedule`] witnessing that every task can finish
/// by its `deadlines` under the optional `releases`, by solving the
/// transportation flow over the machine's speed levels and averaging the
/// routed volume per (task, interval). Completion times are the end of
/// each task's last positive allocation (≤ its deadline).
///
/// # Errors
/// [`ScheduleError::InfeasibleCompletionTimes`] when the flow does not
/// saturate (with the min-cut violated set's first member as the
/// offender); validation errors on malformed input.
pub fn flow_witness<S: Scalar>(
    instance: &Instance<S>,
    releases: Option<&[S]>,
    deadlines: &[S],
) -> Result<ColumnSchedule<S>, ScheduleError> {
    flow_witness_in(instance, releases, deadlines, &mut ProbeSession::new())
}

/// [`flow_witness`] solving through the caller's [`ProbeSession`]. When
/// the session's last probe already solved these very deadlines (the
/// usual hand-off from a parametric search that just accepted them), the
/// warm solve finds nothing to repair or augment and the witness is read
/// off the existing residual for free.
///
/// # Errors
/// Same contract as [`flow_witness`].
pub fn flow_witness_in<S: Scalar>(
    instance: &Instance<S>,
    releases: Option<&[S]>,
    deadlines: &[S],
    session: &mut ProbeSession<S>,
) -> Result<ColumnSchedule<S>, ScheduleError> {
    instance.validate()?;
    let n = instance.n();
    if deadlines.len() != n {
        return Err(ScheduleError::LengthMismatch {
            what: "deadlines",
            expected: n,
            found: deadlines.len(),
        });
    }
    for d in deadlines {
        if !d.is_finite() || d.is_negative() {
            return Err(ScheduleError::InvalidTime {
                value: d.to_f64(),
                context: "witness deadlines",
            });
        }
    }
    if n == 0 {
        return Ok(ColumnSchedule {
            p: instance.p.clone(),
            completions: vec![],
            columns: vec![],
        });
    }
    let tol = Tolerance::<S>::for_instance(n);
    let flow = session.solve(instance, releases, deadlines);
    let total_volume = instance.total_volume();
    if flow + saturation_slack(&total_volume) < total_volume {
        // Infeasible: surface the min-cut violated set as the certificate.
        let tasks = session.min_cut_tasks(n);
        let first = tasks.first().copied().unwrap_or(0);
        let volume = S::sum(tasks.iter().map(|&i| instance.tasks[i].volume.clone()));
        let capacity = set_capacity(instance, &tasks, releases, deadlines);
        return Err(ScheduleError::InfeasibleCompletionTimes {
            task: TaskId(first),
            placeable: capacity.to_f64(),
            required: volume.to_f64(),
        });
    }

    // Shared per-(task, interval) snapped rates (see
    // `parametric::snapped_interval_rates`), packaged as columns.
    let layout = session.layout();
    let m = layout.intervals.len();
    let mut col_rates: Vec<Vec<(TaskId, S)>> = vec![Vec::new(); m];
    let mut completions = vec![S::zero(); n];
    let rates = snapped_interval_rates(instance, layout, session.network(), &tol);
    for (i, pieces) in rates.into_iter().enumerate() {
        for (j, rate) in pieces {
            let (_, b) = &layout.intervals[j];
            completions[i] = completions[i].clone().max_of(b.clone());
            col_rates[j].push((TaskId(i), rate));
        }
    }
    let columns = layout
        .intervals
        .iter()
        .zip(col_rates)
        .map(|((a, b), rates)| Column {
            start: a.clone(),
            end: b.clone(),
            rates,
        })
        .collect();
    Ok(ColumnSchedule {
        p: instance.p.clone(),
        completions,
        columns,
    })
}

/// The per-task *height* on this machine: `hᵢ = Vᵢ / rate_cap(δᵢ)`, the
/// minimal possible running time.
fn heights<S: Scalar>(instance: &Instance<S>) -> Vec<S> {
    instance
        .iter()
        .map(|(id, t)| t.volume.clone() / instance.effective_delta(id))
        .collect()
}

/// Exact minimal `Lmax` against due dates `due`, with the transportation
/// flow as feasibility oracle *and* witness builder — sound on any
/// machine model, and the only `Lmax` path on heterogeneous related
/// machines. Returns the exact optimum and a witnessing schedule whose
/// completions meet the optimal deadlines `max(dᵢ + L*, hᵢ)`.
///
/// # Errors
/// Input validation failures, or [`ScheduleError::Unconverged`] on a
/// pathological float knife-edge (never on exact scalars).
pub fn min_lmax_flow<S: Scalar>(
    instance: &Instance<S>,
    due: &[S],
) -> Result<(S, ColumnSchedule<S>), ScheduleError> {
    min_lmax_flow_in(instance, due, &mut ProbeSession::new())
}

/// [`min_lmax_flow`] running every probe — and the final witness solve —
/// through the caller's [`ProbeSession`].
///
/// # Errors
/// Same contract as [`min_lmax_flow`].
pub fn min_lmax_flow_in<S: Scalar>(
    instance: &Instance<S>,
    due: &[S],
    session: &mut ProbeSession<S>,
) -> Result<(S, ColumnSchedule<S>), ScheduleError> {
    instance.validate()?;
    if due.len() != instance.n() {
        return Err(ScheduleError::LengthMismatch {
            what: "due dates",
            expected: instance.n(),
            found: due.len(),
        });
    }
    for d in due {
        if !d.is_finite() {
            return Err(ScheduleError::InvalidTime {
                value: d.to_f64(),
                context: "due dates",
            });
        }
    }
    if instance.n() == 0 {
        return Ok((
            S::zero(),
            ColumnSchedule {
                p: instance.p.clone(),
                completions: vec![],
                columns: vec![],
            },
        ));
    }
    let hs = heights(instance);
    // The search never probes below the height bound, so d + L ≥ h ≥ 0
    // always; the clamp only absorbs f64 rounding at the bound itself.
    let deadlines_at = |l: &S| -> Vec<S> {
        due.iter()
            .zip(&hs)
            .map(|(d, h)| (d.clone() + l.clone()).max_of(h.clone()))
            .collect()
    };
    // Every probe runs through the session: the flow of probe k is the
    // warm start of probe k + 1, and the accepted probe's residual is the
    // witness solve.
    let outcome = min_lmax_value(instance, due, session, |l, session| {
        Ok(
            match violated_set_in(instance, None, &deadlines_at(l), session)? {
                None => Probe::Feasible,
                Some(set) => Probe::Infeasible(Some(set)),
            },
        )
    })?;
    let witness = flow_witness_in(instance, None, &deadlines_at(&outcome.value), session)?;
    Ok((outcome.value, witness))
}

/// Minimal `C` at which the violated set's constraint `V(T) ≤ cap_T(C)`
/// becomes satisfiable when only the *current* task's deadline is the
/// variable (all other members keep their fixed deadlines).
///
/// The capacity as a function of `C` is
/// `cap_T(C) = ∫₀^∞ f(active(t)) dt`, where the current task is active
/// on `[0, C]` and fixed member `i` on `[0, Dᵢ]` — crucially, fixed
/// members keep absorbing capacity *after* `C`. Between consecutive
/// fixed deadlines the fixed-active set is constant, so `cap_T` is
/// piecewise linear in `C` with per-segment slope
/// `f(S ∪ {cur}) − f(S)` (the current task's marginal rank over that
/// segment's survivors `S`); walk the segments and solve the one binding
/// linear equation. Exact on exact scalars. Returns `None` when the set
/// does not contain the current task (an f64 knife-edge artefact; the
/// caller nudges instead).
fn anchored_constraint_root<S: Scalar>(
    instance: &Instance<S>,
    deadlines: &[S],
    current: usize,
    set: &ViolatedSet<S>,
) -> Option<S> {
    if !set.tasks.contains(&current) {
        return None;
    }
    let mut fixed: Vec<usize> = set
        .tasks
        .iter()
        .copied()
        .filter(|&i| i != current)
        .collect();
    fixed.sort_by(|&a, &b| deadlines[a].total_cmp_s(&deadlines[b]).then(a.cmp(&b)));
    let k = fixed.len();
    // Segment j covers [t_j, t_{j+1}) with t_0 = 0, t_j = D(fixed[j−1]),
    // and an infinite tail after t_k; its fixed-active set is fixed[j..].
    let t_at = |j: usize| -> S {
        if j == 0 {
            S::zero()
        } else {
            deadlines[fixed[j - 1]].clone()
        }
    };
    // rest[j] = fixed-only capacity over [t_j, ∞) (the tail past t_k has
    // no fixed survivors, so it contributes nothing).
    let mut acc = RankOracle::for_machine(&instance.machine);
    let mut rest = vec![S::zero(); k + 1];
    for j in (0..k).rev() {
        acc.add_task(fixed[j], &instance.tasks[fixed[j]].delta);
        rest[j] = rest[j + 1].clone() + (t_at(j + 1) - t_at(j)) * acc.rate();
    }
    // Forward walk: `acc` now holds all fixed members (= segment 0's
    // survivors); `base` accumulates capacity over [0, t_j) with the
    // current task active.
    let cur_delta = instance.tasks[current].delta.clone();
    let mut base = S::zero();
    for j in 0..=k {
        let without = acc.rate();
        let with_cur = {
            // Clone instead of add/sub so f64 accumulator state stays
            // drift-free across segments (a + x − x need not equal a).
            let mut with_acc = acc.clone();
            with_acc.add_task(current, &cur_delta);
            with_acc.rate()
        };
        // cap_T at C = t_j, and its slope within this segment.
        let cap_at_start = base.clone() + rest[j].clone();
        let slope = with_cur.clone() - without;
        if slope.is_positive() && cap_at_start < set.volume {
            let c = t_at(j) + (set.volume.clone() - cap_at_start) / slope;
            if j == k || c <= t_at(j + 1) {
                return Some(c);
            }
        }
        if j < k {
            base = base + (t_at(j + 1) - t_at(j)) * with_cur;
            acc.sub_task(fixed[j], &instance.tasks[fixed[j]].delta);
        }
    }
    // Unreachable in exact arithmetic (the final segment's slope is the
    // current task's own rank f({cur}) > 0); an f64 knife-edge falls
    // back to the caller's slack-nudge.
    None
}

/// **Greedy(σ) on related machines**: insert the tasks in the given
/// order; each task receives the *earliest completion time* that keeps
/// the already-placed prefix transport-feasible (earlier tasks keep the
/// deadlines they were promised). The per-task minimization runs the same
/// violated-set Newton iteration as the parametric searches — exact on
/// exact scalars — and the final deadline vector is materialized by
/// [`flow_witness`]. On identical machines this is the completion-time
/// formulation of Algorithm 3's greedy principle.
///
/// # Errors
/// Validation failures, non-permutation orders, or
/// [`ScheduleError::Unconverged`] on a pathological float knife-edge.
pub fn greedy_related<S: Scalar>(
    instance: &Instance<S>,
    order: &[TaskId],
) -> Result<ColumnSchedule<S>, ScheduleError> {
    instance.validate()?;
    let n = instance.n();
    if !crate::algos::orders::is_permutation(order, n) {
        return Err(ScheduleError::InvalidInstance {
            reason: format!("order is not a permutation of 0..{n}"),
        });
    }
    if n == 0 {
        return Ok(ColumnSchedule {
            p: instance.p.clone(),
            completions: vec![],
            columns: vec![],
        });
    }
    let tol = Tolerance::<S>::for_instance(n);
    let hs = heights(instance);
    // One session across the whole insertion sweep: within one task's
    // completion search only that deadline moves (warm solves); when the
    // prefix grows the topology changes and the session rebuilds cold
    // automatically.
    let mut session = ProbeSession::new();
    // The prefix instance grows in σ-order; `deadlines` is aligned to it.
    // Eligibility sets are task-indexed, so a restricted machine must be
    // re-indexed onto the σ-prefix as it grows.
    let restricted = instance
        .machine
        .restriction()
        .map(|(m, eligible)| (m, eligible.to_vec()));
    let mut prefix = Instance::on(instance.machine.clone(), Vec::new());
    let mut prefix_eligible: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut deadlines: Vec<S> = Vec::with_capacity(n);
    let max_iters = 16 * (n + 4);
    for &id in order {
        prefix.tasks.push(instance.task(id).clone());
        if let Some((m, eligible)) = &restricted {
            prefix_eligible.push(eligible[id.0].clone());
            prefix.machine = MachineModel::RestrictedAssignment {
                m: *m,
                eligible: prefix_eligible.clone(),
            };
            prefix.p = prefix.machine.capacity();
        }
        let cur = prefix.n() - 1;
        let mut c = hs[id.0].clone();
        let mut placed = false;
        for _ in 0..max_iters {
            deadlines.push(c.clone());
            let cut = violated_set_in(&prefix, None, &deadlines, &mut session)?;
            deadlines.pop();
            let Some(set) = cut else {
                placed = true;
                break;
            };
            deadlines.push(c.clone());
            let root = anchored_constraint_root(&prefix, &deadlines, cur, &set);
            deadlines.pop();
            let next = match root {
                Some(r) => r,
                None => c.clone() + tol.slack(c.clone(), S::one()),
            };
            c = if next > c {
                next
            } else {
                c.clone() + tol.slack(c.clone(), S::one())
            };
        }
        if !placed {
            return Err(ScheduleError::Unconverged {
                what: "related greedy completion search",
                iterations: max_iters,
            });
        }
        deadlines.push(c);
    }
    // Deadlines back in original task order, then one witness flow (the
    // prefix order differs from the task order, so this solve rebuilds —
    // through the same arena).
    let mut by_task = vec![S::zero(); n];
    for (k, &id) in order.iter().enumerate() {
        by_task[id.0] = deadlines[k].clone();
    }
    flow_witness_in(instance, None, &by_task, &mut session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigratio::Rational;

    fn related_inst() -> Instance {
        // speeds (2, 1, 1): P = 4, but two δ = 1 tasks share at most 3.
        Instance::builder(0.0)
            .tasks([(3.0, 1.0, 1.0), (3.0, 2.0, 1.0), (2.0, 1.0, 3.0)])
            .speeds(vec![2.0, 1.0, 1.0])
            .build()
            .unwrap()
    }

    #[test]
    fn flow_witness_validates_on_related_machines() {
        let inst = related_inst();
        let s = flow_witness(&inst, None, &[4.0, 4.0, 4.0]).unwrap();
        s.validate(&inst).unwrap();
        for (i, c) in s.completions.iter().enumerate() {
            assert!(*c <= 4.0 + 1e-9, "task {i} past its deadline: {c}");
        }
        // Tight deadlines are rejected with a certificate.
        assert!(matches!(
            flow_witness(&inst, None, &[1.0, 1.0, 1.0]),
            Err(ScheduleError::InfeasibleCompletionTimes { .. })
        ));
    }

    #[test]
    fn min_lmax_flow_is_exact_on_related_machines() {
        // speeds (2, 1, 1), two δ = 1 unit-due tasks of volume 3: the
        // pair's rank is 3, so dues 0 give L* = 2 (both by 3·L ≥ 6).
        let q = Rational::from_f64_exact;
        let inst = Instance::<Rational>::builder(q(0.0))
            .tasks([(q(3.0), q(1.0), q(1.0)), (q(3.0), q(1.0), q(1.0))])
            .speeds(vec![q(2.0), q(1.0), q(1.0)])
            .build()
            .unwrap();
        let (l, cs) = min_lmax_flow(&inst, &[q(0.0), q(0.0)]).unwrap();
        assert_eq!(l, Rational::from_int(2));
        cs.validate(&inst).unwrap(); // zero tolerance, polymatroid included
                                     // ε below the optimum is exactly infeasible.
        let eps = Rational::new(1, 1_000_000);
        let probe = vec![l.clone() - eps.clone(), l - eps];
        assert!(crate::algos::parametric::violated_set(&inst, None, &probe)
            .unwrap()
            .is_some());
    }

    #[test]
    fn min_lmax_flow_agrees_with_wf_path_on_identical_machines() {
        let inst = Instance::builder(2.0)
            .tasks([(2.0, 1.0, 1.0), (2.0, 1.0, 2.0)])
            .build()
            .unwrap();
        let (via_flow, cs) = min_lmax_flow(&inst, &[0.0, 0.0]).unwrap();
        cs.validate(&inst).unwrap();
        let (via_wf, _) = crate::algos::makespan::min_lmax(&inst, &[0.0, 0.0]).unwrap();
        assert_eq!(via_flow, via_wf);
    }

    #[test]
    fn greedy_related_promises_are_kept_in_order() {
        let inst = related_inst();
        let order: Vec<TaskId> = (0..3).map(TaskId).collect();
        let s = greedy_related(&inst, &order).unwrap();
        s.validate(&inst).unwrap();
        // First task alone: completes at its height V/rate_cap = 3/2.
        assert!((s.completions[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn greedy_related_single_task_exact() {
        let q = Rational::from_f64_exact;
        let inst = Instance::<Rational>::builder(q(0.0))
            .task(q(3.0), q(1.0), q(2.0))
            .speeds(vec![q(2.0), q(1.0)])
            .build()
            .unwrap();
        let s = greedy_related(&inst, &[TaskId(0)]).unwrap();
        s.validate(&inst).unwrap();
        assert_eq!(s.completions[0], Rational::from_int(1)); // 3 / (2+1)
    }

    #[test]
    fn greedy_root_counts_capacity_after_the_candidate_deadline() {
        // speeds (2, 1): F (δ = 1, V = 19) is promised 9.5 first; then
        // X (δ = 2, V = 2) arrives. The binding pair constraint is
        // cap_{X,F}(C) = 3C + 2(9.5 − C) = C + 19 ≥ 21 ⇒ C = 2 — a
        // walk that pretends all 21 units must land before C would
        // overshoot to 21/3 = 7. The search must land on exactly 2.
        let q = Rational::from_f64_exact;
        let inst = Instance::<Rational>::builder(q(0.0))
            .task(q(19.0), q(1.0), q(1.0)) // F
            .task(q(2.0), q(1.0), q(2.0)) // X
            .speeds(vec![q(2.0), q(1.0)])
            .build()
            .unwrap();
        let s = greedy_related(&inst, &[TaskId(0), TaskId(1)]).unwrap();
        s.validate(&inst).unwrap(); // zero tolerance
        assert_eq!(s.completions[0], Rational::new(19, 2));
        assert_eq!(
            s.completions[1],
            Rational::from_int(2),
            "X's earliest feasible completion is 2 (F keeps absorbing after C)"
        );
    }

    #[test]
    fn greedy_related_rejects_bad_orders() {
        let inst = related_inst();
        assert!(greedy_related(&inst, &[TaskId(0)]).is_err());
    }
}
