//! Per-processor Gantt charts and the paper's preemption accounting.
//!
//! Theorems 9 and 10 bound the number of *preemptions* of Water-Filling
//! schedules: a preemption is any instant, strictly between a task's first
//! start and final completion, at which the **set of processors** executing
//! the task changes. This module counts exactly that quantity on resolved
//! per-processor timelines.
//!
//! Generic over the scalar field: times are scalars, processors are lanes.

use crate::error::ScheduleError;
use crate::instance::TaskId;
use numkit::{Scalar, Tolerance};
use std::fmt;

/// A run of one task on one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttSegment<S = f64> {
    /// Run start.
    pub start: S,
    /// Run end (`end > start`).
    pub end: S,
    /// The task occupying the processor.
    pub task: TaskId,
}

/// A fully resolved schedule: one timeline per physical processor.
#[derive(Debug, Clone, PartialEq)]
pub struct Gantt<S = f64> {
    /// Number of processors.
    pub n_procs: usize,
    /// `lanes[p]` = time-sorted, non-overlapping runs on processor `p`.
    pub lanes: Vec<Vec<GanttSegment<S>>>,
}

impl<S: Scalar> Gantt<S> {
    /// An empty chart on `n_procs` processors.
    pub fn empty(n_procs: usize) -> Self {
        Gantt {
            n_procs,
            lanes: vec![Vec::new(); n_procs],
        }
    }

    /// Latest segment end across all lanes.
    pub fn makespan(&self) -> S {
        self.lanes
            .iter()
            .flatten()
            .map(|s| s.end.clone())
            .fold(S::zero(), S::max_of)
    }

    /// Completion time per task (0 for tasks that never run).
    pub fn completion_times(&self, n_tasks: usize) -> Vec<S> {
        let mut cs = vec![S::zero(); n_tasks];
        for s in self.lanes.iter().flatten() {
            if s.task.0 < n_tasks {
                cs[s.task.0] = cs[s.task.0].clone().max_of(s.end.clone());
            }
        }
        cs
    }

    /// Busy area divided by `n_procs × makespan` (0 for an empty chart).
    pub fn utilization(&self) -> S {
        let span = self.makespan();
        if !span.is_positive() || self.n_procs == 0 {
            return S::zero();
        }
        let busy = S::sum(
            self.lanes
                .iter()
                .flatten()
                .map(|s| s.end.clone() - s.start.clone()),
        );
        busy / (span * S::from_int(self.n_procs as i64))
    }

    /// Structural validity: per lane, segments sorted, positive-length,
    /// non-overlapping.
    pub fn validate(&self, tol: Tolerance<S>) -> Result<(), ScheduleError> {
        for lane in &self.lanes {
            let mut prev_end = S::zero();
            for s in lane {
                if s.end <= s.start {
                    return Err(ScheduleError::InvalidTime {
                        value: s.end.to_f64(),
                        context: "gantt segment end ≤ start",
                    });
                }
                if s.start.clone() + tol.slack(s.start.clone(), prev_end.clone()) < prev_end {
                    return Err(ScheduleError::InvalidTime {
                        value: s.start.to_f64(),
                        context: "overlapping gantt segments",
                    });
                }
                prev_end = prev_end.max_of(s.end.clone());
            }
        }
        Ok(())
    }

    /// All of `task`'s runs as `(processor, start, end)`.
    pub fn runs_of(&self, task: TaskId) -> Vec<(usize, S, S)> {
        let mut out = Vec::new();
        for (p, lane) in self.lanes.iter().enumerate() {
            for s in lane {
                if s.task == task {
                    out.push((p, s.start.clone(), s.end.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.1.total_cmp_s(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The paper's preemption count for one task: the number of instants,
    /// strictly inside `(first start, final end)`, where the set of
    /// processors running the task changes. A pause (set becomes empty,
    /// then refills) contributes 2 — one change at each boundary.
    pub fn preemptions_of(&self, task: TaskId, tol: Tolerance<S>) -> usize {
        let runs = self.runs_of(task);
        if runs.is_empty() {
            return 0;
        }
        // Distinct event times for this task; the set of processors running
        // it is constant between consecutive events.
        let mut times: Vec<S> = runs
            .iter()
            .flat_map(|(_, s, e)| [s.clone(), e.clone()])
            .collect();
        times.sort_by(S::total_cmp_s);
        times.dedup_by(|a, b| tol.eq(a.clone(), b.clone()));

        let set_at = |t: &S| -> Vec<usize> {
            let mut procs: Vec<usize> = runs
                .iter()
                .filter(|(_, s, e)| *s <= *t && *t < *e)
                .map(|(p, _, _)| *p)
                .collect();
            procs.sort_unstable();
            procs
        };

        // Evaluate at interval midpoints (robust to float jitter at the
        // boundaries) and count set changes between consecutive intervals.
        let half = S::from_f64(0.5);
        let mut count = 0;
        let mut prev_set: Option<Vec<usize>> = None;
        for w in times.windows(2) {
            if w[1].clone() - w[0].clone() <= tol.abs {
                continue;
            }
            let mid = half.clone() * (w[0].clone() + w[1].clone());
            let cur = set_at(&mid);
            if let Some(prev) = &prev_set {
                if *prev != cur {
                    count += 1;
                }
            }
            prev_set = Some(cur);
        }
        count
    }

    /// Total preemptions over `n_tasks` tasks (Theorem 10's `≤ 3n` metric
    /// for integer Water-Filling schedules).
    pub fn preemption_count(&self, n_tasks: usize, tol: Tolerance<S>) -> usize {
        (0..n_tasks)
            .map(|i| self.preemptions_of(TaskId(i), tol.clone()))
            .sum()
    }

    /// ASCII rendering: one row per processor, `width` character cells over
    /// `[0, makespan]`, each cell showing the task occupying the cell's
    /// midpoint (`·` when idle).
    pub fn render(&self, width: usize) -> String {
        let span = self.makespan().to_f64();
        let mut out = String::new();
        if span <= 0.0 || width == 0 {
            return "(empty gantt)\n".to_string();
        }
        for (p, lane) in self.lanes.iter().enumerate() {
            out.push_str(&format!("P{p:<3}|"));
            for c in 0..width {
                let t = (c as f64 + 0.5) / width as f64 * span;
                let glyph = lane
                    .iter()
                    .find(|s| s.start.to_f64() <= t && t < s.end.to_f64())
                    .map_or('·', |s| task_glyph(s.task));
                out.push(glyph);
            }
            out.push('\n');
        }
        out.push_str(&format!("     0{:>w$.3}\n", span, w = width - 1));
        out
    }
}

/// Stable printable glyph for a task id.
fn task_glyph(t: TaskId) -> char {
    const GLYPHS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    GLYPHS[t.0 % GLYPHS.len()] as char
}

impl<S: Scalar> fmt::Display for Gantt<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tol() -> Tolerance {
        Tolerance::default()
    }

    /// T0 runs on P0 for [0,2]; T1 on P1 [0,1] then on P0+P1 [2,3]... built
    /// by hand for metric tests.
    fn chart() -> Gantt {
        Gantt {
            n_procs: 2,
            lanes: vec![
                vec![
                    GanttSegment {
                        start: 0.0,
                        end: 2.0,
                        task: TaskId(0),
                    },
                    GanttSegment {
                        start: 2.0,
                        end: 3.0,
                        task: TaskId(1),
                    },
                ],
                vec![
                    GanttSegment {
                        start: 0.0,
                        end: 1.0,
                        task: TaskId(1),
                    },
                    GanttSegment {
                        start: 2.0,
                        end: 3.0,
                        task: TaskId(1),
                    },
                ],
            ],
        }
    }

    #[test]
    fn accessors() {
        let g = chart();
        assert_eq!(g.makespan(), 3.0);
        assert_eq!(g.completion_times(2), vec![2.0, 3.0]);
        assert!((g.utilization() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(g.runs_of(TaskId(1)).len(), 3);
        g.validate(tol()).unwrap();
    }

    #[test]
    fn preemptions_uninterrupted_task_is_zero() {
        let g = chart();
        assert_eq!(g.preemptions_of(TaskId(0), tol()), 0);
    }

    #[test]
    fn preemptions_counts_pause_and_growth() {
        let g = chart();
        // T1: {P1} on [0,1], ∅ on [1,2], {P0,P1} on [2,3]:
        // changes at t=1 (→∅) and t=2 (∅→{P0,P1}) ⇒ 2.
        assert_eq!(g.preemptions_of(TaskId(1), tol()), 2);
        assert_eq!(g.preemption_count(2, tol()), 2);
    }

    #[test]
    fn preemptions_processor_swap_counts() {
        // Task keeps one processor worth of allocation but migrates P0→P1.
        let g = Gantt {
            n_procs: 2,
            lanes: vec![
                vec![GanttSegment {
                    start: 0.0,
                    end: 1.0,
                    task: TaskId(0),
                }],
                vec![GanttSegment {
                    start: 1.0,
                    end: 2.0,
                    task: TaskId(0),
                }],
            ],
        };
        assert_eq!(g.preemptions_of(TaskId(0), tol()), 1);
    }

    #[test]
    fn validate_rejects_overlap() {
        let g = Gantt {
            n_procs: 1,
            lanes: vec![vec![
                GanttSegment {
                    start: 0.0,
                    end: 2.0,
                    task: TaskId(0),
                },
                GanttSegment {
                    start: 1.0,
                    end: 3.0,
                    task: TaskId(1),
                },
            ]],
        };
        assert!(g.validate(tol()).is_err());
    }

    #[test]
    fn render_shows_tasks() {
        let g = chart();
        let s = g.render(30);
        assert!(s.contains('A'));
        assert!(s.contains('B'));
        assert!(s.contains("P0"));
        assert_eq!(Gantt::<f64>::empty(2).render(10), "(empty gantt)\n");
    }

    #[test]
    fn empty_task_has_no_preemptions() {
        let g = chart();
        assert_eq!(g.preemptions_of(TaskId(9), tol()), 0);
        assert_eq!(Gantt::<f64>::empty(3).makespan(), 0.0);
        assert_eq!(Gantt::<f64>::empty(3).utilization(), 0.0);
    }
}
