//! Column-based fractional schedules (`MWCT-CB-F`, Definition 2).
//!
//! A *column* is the time slice between two consecutive task completions;
//! within a column every task holds a constant fractional number of
//! processors. Columns are the normal currency of the paper: the LP of
//! Corollary 1 optimizes over them, Water-Filling produces them, and
//! Theorem 3 converts them to per-processor schedules.

use crate::error::ScheduleError;
use crate::instance::{Instance, TaskId};
use numkit::{KahanSum, Tolerance};
use std::fmt;

/// One column: the interval `[start, end]` and the constant rates held by
/// each task inside it. Tasks absent from `rates` hold zero processors.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column start time.
    pub start: f64,
    /// Column end time (`end ≥ start`; zero-length columns arise from tied
    /// completion times and are legal).
    pub end: f64,
    /// `(task, processors)` pairs with strictly positive rates.
    pub rates: Vec<(TaskId, f64)>,
}

impl Column {
    /// Column duration `l = end − start`.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// `true` iff the column has zero duration.
    pub fn is_empty(&self) -> bool {
        self.len() <= 0.0
    }

    /// Rate held by `task` in this column (zero when absent).
    pub fn rate_of(&self, task: TaskId) -> f64 {
        self.rates
            .iter()
            .find(|(t, _)| *t == task)
            .map_or(0.0, |(_, r)| *r)
    }

    /// Total processors in use.
    pub fn total_rate(&self) -> f64 {
        numkit::sum::ksum(self.rates.iter().map(|(_, r)| *r))
    }
}

/// A complete column-based fractional schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSchedule {
    /// Machine capacity the schedule was built for.
    pub p: f64,
    /// Completion time of each task, indexed by [`TaskId`].
    pub completions: Vec<f64>,
    /// Columns in time order, contiguous from `t = 0`.
    pub columns: Vec<Column>,
}

impl ColumnSchedule {
    /// Completion times indexed by task.
    pub fn completion_times(&self) -> &[f64] {
        &self.completions
    }

    /// Completion time of one task.
    ///
    /// # Panics
    /// Panics if `task` is out of range.
    pub fn completion(&self, task: TaskId) -> f64 {
        self.completions[task.0]
    }

    /// Schedule makespan `max Cᵢ`.
    pub fn makespan(&self) -> f64 {
        self.completions.iter().copied().fold(0.0, f64::max)
    }

    /// The paper's objective `Σ wᵢCᵢ`.
    ///
    /// # Panics
    /// Panics when the instance task count differs from the schedule's
    /// (callers pair schedules with the instance that produced them).
    pub fn weighted_completion_cost(&self, instance: &Instance) -> f64 {
        assert_eq!(
            instance.n(),
            self.completions.len(),
            "instance/schedule task count mismatch"
        );
        let mut s = KahanSum::new();
        for (id, t) in instance.iter() {
            s.add(t.weight * self.completions[id.0]);
        }
        s.value()
    }

    /// Unweighted sum of completion times `Σ Cᵢ`.
    pub fn total_completion_time(&self) -> f64 {
        numkit::sum::ksum(self.completions.iter().copied())
    }

    /// Task completion order (earliest first, ties by id).
    pub fn completion_order(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..self.completions.len()).map(TaskId).collect();
        ids.sort_by(|a, b| {
            self.completions[a.0]
                .total_cmp(&self.completions[b.0])
                .then(a.0.cmp(&b.0))
        });
        ids
    }

    /// Area allocated to `task` across all columns.
    pub fn allocated_area(&self, task: TaskId) -> f64 {
        let mut s = KahanSum::new();
        for c in &self.columns {
            let r = c.rate_of(task);
            if r > 0.0 {
                s.add(r * c.len());
            }
        }
        s.value()
    }

    /// Validate with the default tolerance scaled by schedule size.
    pub fn validate(&self, instance: &Instance) -> Result<(), ScheduleError> {
        let scale = 1.0 + self.columns.len() as f64;
        self.validate_with(instance, Tolerance::default().scaled(scale))
    }

    /// Full validity check against Definition 2:
    ///
    /// 1. columns are contiguous from `t = 0` with non-negative lengths;
    /// 2. every rate is in `[0, min(δᵢ, P)]`;
    /// 3. per column, `Σᵢ dᵢ,ⱼ ≤ P`;
    /// 4. per task, `Σⱼ dᵢ,ⱼ·lⱼ = Vᵢ`;
    /// 5. no allocation after the recorded completion time, and the last
    ///    allocation reaches it.
    pub fn validate_with(&self, instance: &Instance, tol: Tolerance) -> Result<(), ScheduleError> {
        if self.completions.len() != instance.n() {
            return Err(ScheduleError::LengthMismatch {
                what: "completion times",
                expected: instance.n(),
                found: self.completions.len(),
            });
        }
        for &c in &self.completions {
            if !c.is_finite() || c < 0.0 {
                return Err(ScheduleError::InvalidTime {
                    value: c,
                    context: "completion times",
                });
            }
        }
        let mut prev_end = 0.0;
        for col in &self.columns {
            if !tol.eq(col.start, prev_end) {
                return Err(ScheduleError::InvalidTime {
                    value: col.start,
                    context: "column start (not contiguous)",
                });
            }
            if col.end < col.start - tol.slack(col.end, col.start) {
                return Err(ScheduleError::InvalidTime {
                    value: col.end,
                    context: "column end before start",
                });
            }
            prev_end = col.end;

            let mut total = KahanSum::new();
            for &(task, rate) in &col.rates {
                if task.0 >= instance.n() {
                    return Err(ScheduleError::LengthMismatch {
                        what: "task id in column",
                        expected: instance.n(),
                        found: task.0,
                    });
                }
                let cap = instance.effective_delta(task);
                if rate < -tol.abs {
                    return Err(ScheduleError::DeltaExceeded {
                        task,
                        at: col.start,
                        rate,
                        delta: cap,
                    });
                }
                if !tol.le(rate, cap) {
                    return Err(ScheduleError::DeltaExceeded {
                        task,
                        at: col.start,
                        rate,
                        delta: cap,
                    });
                }
                // Allocation strictly after the task's completion time.
                if col.len() > tol.abs
                    && rate > tol.abs
                    && col.start > self.completions[task.0] + tol.slack(col.start, 0.0)
                {
                    return Err(ScheduleError::AllocationAfterCompletion {
                        task,
                        completion: self.completions[task.0],
                        at: col.start,
                    });
                }
                total.add(rate);
            }
            if !tol.le(total.value(), self.p) {
                return Err(ScheduleError::CapacityExceeded {
                    at: col.start,
                    total: total.value(),
                    p: self.p,
                });
            }
        }
        // Volumes.
        for (id, t) in instance.iter() {
            let area = self.allocated_area(id);
            if !tol.eq(area, t.volume) {
                return Err(ScheduleError::VolumeMismatch {
                    task: id,
                    allocated: area,
                    required: t.volume,
                });
            }
        }
        // Completion must coincide with the end of the last positive-rate,
        // positive-length column of each task.
        for (id, _) in instance.iter() {
            let last_alloc = self
                .columns
                .iter()
                .filter(|c| c.len() > tol.abs && c.rate_of(id) > tol.abs)
                .map(|c| c.end)
                .fold(0.0, f64::max);
            if !tol.eq(last_alloc, self.completions[id.0]) {
                return Err(ScheduleError::AllocationAfterCompletion {
                    task: id,
                    completion: self.completions[id.0],
                    at: last_alloc,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for ColumnSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ColumnSchedule (P = {}, {} columns, makespan = {:.4})",
            self.p,
            self.columns.len(),
            self.makespan()
        )?;
        for (j, c) in self.columns.iter().enumerate() {
            write!(f, "  col {j}: [{:.4}, {:.4}]", c.start, c.end)?;
            for &(t, r) in &c.rates {
                write!(f, "  {t}:{r:.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn inst() -> Instance {
        // P = 2; two tasks.
        Instance::builder(2.0)
            .task(2.0, 1.0, 1.0) // T0: V=2, δ=1
            .task(2.0, 1.0, 2.0) // T1: V=2, δ=2
            .build()
            .unwrap()
    }

    /// T0 at rate 1 over [0,2]; T1 at rate 1 over [0,2]. Both complete at 2.
    fn valid_schedule() -> ColumnSchedule {
        ColumnSchedule {
            p: 2.0,
            completions: vec![2.0, 2.0],
            columns: vec![Column {
                start: 0.0,
                end: 2.0,
                rates: vec![(TaskId(0), 1.0), (TaskId(1), 1.0)],
            }],
        }
    }

    #[test]
    fn accessors() {
        let s = valid_schedule();
        assert_eq!(s.makespan(), 2.0);
        assert_eq!(s.completion(TaskId(1)), 2.0);
        assert_eq!(s.total_completion_time(), 4.0);
        assert_eq!(s.weighted_completion_cost(&inst()), 4.0);
        assert_eq!(s.allocated_area(TaskId(0)), 2.0);
        assert_eq!(s.completion_order(), vec![TaskId(0), TaskId(1)]);
        assert_eq!(s.columns[0].rate_of(TaskId(7)), 0.0);
        assert_eq!(s.columns[0].total_rate(), 2.0);
        assert!(!s.columns[0].is_empty());
    }

    #[test]
    fn valid_schedule_passes() {
        valid_schedule().validate(&inst()).unwrap();
    }

    #[test]
    fn delta_violation_detected() {
        let mut s = valid_schedule();
        s.columns[0].rates[0].1 = 1.5; // T0 has δ = 1
        match s.validate(&inst()) {
            Err(ScheduleError::DeltaExceeded { task, .. }) => assert_eq!(task, TaskId(0)),
            other => panic!("expected DeltaExceeded, got {other:?}"),
        }
    }

    #[test]
    fn capacity_violation_detected() {
        let mut s = valid_schedule();
        s.columns[0].rates[1].1 = 2.0; // total 3 > P = 2 (δ1 = 2 is fine)
        match s.validate(&inst()) {
            Err(ScheduleError::CapacityExceeded { .. }) => {}
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
    }

    #[test]
    fn volume_mismatch_detected() {
        let mut s = valid_schedule();
        s.columns[0].end = 1.5; // areas now 1.5 ≠ 2
        s.completions = vec![1.5, 1.5];
        match s.validate(&inst()) {
            Err(ScheduleError::VolumeMismatch { task, .. }) => assert_eq!(task, TaskId(0)),
            other => panic!("expected VolumeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn allocation_after_completion_detected() {
        let mut s = valid_schedule();
        s.completions[0] = 1.0; // claims T0 completes at 1 but it runs to 2
        match s.validate(&inst()) {
            Err(ScheduleError::AllocationAfterCompletion { task, .. }) => {
                assert_eq!(task, TaskId(0))
            }
            other => panic!("expected AllocationAfterCompletion, got {other:?}"),
        }
    }

    #[test]
    fn non_contiguous_columns_detected() {
        let mut s = valid_schedule();
        s.columns.push(Column {
            start: 5.0,
            end: 6.0,
            rates: vec![],
        });
        assert!(matches!(
            s.validate(&inst()),
            Err(ScheduleError::InvalidTime { .. })
        ));
    }

    #[test]
    fn zero_length_columns_are_legal() {
        let mut s = valid_schedule();
        s.columns.push(Column {
            start: 2.0,
            end: 2.0,
            rates: vec![],
        });
        s.validate(&inst()).unwrap();
    }

    #[test]
    fn length_mismatch_detected() {
        let s = valid_schedule();
        let bigger = Instance::builder(2.0)
            .tasks([(2.0, 1.0, 1.0), (2.0, 1.0, 2.0), (1.0, 1.0, 1.0)])
            .build()
            .unwrap();
        assert!(matches!(
            s.validate(&bigger),
            Err(ScheduleError::LengthMismatch { .. })
        ));
    }
}
