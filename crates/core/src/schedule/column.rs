//! Column-based fractional schedules (`MWCT-CB-F`, Definition 2).
//!
//! A *column* is the time slice between two consecutive task completions;
//! within a column every task holds a constant fractional number of
//! processors. Columns are the normal currency of the paper: the LP of
//! Corollary 1 optimizes over them, Water-Filling produces them, and
//! Theorem 3 converts them to per-processor schedules.
//!
//! Generic over the scalar field: `ColumnSchedule<f64>` validates with the
//! float tolerance, `ColumnSchedule<Rational>` with **zero** tolerance —
//! exact schedules must satisfy Definition 2 exactly.

use crate::error::ScheduleError;
use crate::instance::{Instance, TaskId};
use numkit::{Scalar, Tolerance};
use std::fmt;

/// One column: the interval `[start, end]` and the constant rates held by
/// each task inside it. Tasks absent from `rates` hold zero processors.
#[derive(Debug, Clone, PartialEq)]
pub struct Column<S = f64> {
    /// Column start time.
    pub start: S,
    /// Column end time (`end ≥ start`; zero-length columns arise from tied
    /// completion times and are legal).
    pub end: S,
    /// `(task, processors)` pairs with strictly positive rates.
    pub rates: Vec<(TaskId, S)>,
}

impl<S: Scalar> Column<S> {
    /// Column duration `l = end − start`.
    pub fn len(&self) -> S {
        self.end.clone() - self.start.clone()
    }

    /// `true` iff the column has zero duration.
    pub fn is_empty(&self) -> bool {
        !self.len().is_positive()
    }

    /// Rate held by `task` in this column (zero when absent).
    pub fn rate_of(&self, task: TaskId) -> S {
        self.rates
            .iter()
            .find(|(t, _)| *t == task)
            .map_or(S::zero(), |(_, r)| r.clone())
    }

    /// Total processors in use.
    pub fn total_rate(&self) -> S {
        S::sum(self.rates.iter().map(|(_, r)| r.clone()))
    }
}

/// A complete column-based fractional schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSchedule<S = f64> {
    /// Machine capacity the schedule was built for.
    pub p: S,
    /// Completion time of each task, indexed by [`TaskId`].
    pub completions: Vec<S>,
    /// Columns in time order, contiguous from `t = 0`.
    pub columns: Vec<Column<S>>,
}

impl<S: Scalar> ColumnSchedule<S> {
    /// Completion times indexed by task.
    pub fn completion_times(&self) -> &[S] {
        &self.completions
    }

    /// Completion time of one task.
    ///
    /// # Panics
    /// Panics if `task` is out of range.
    pub fn completion(&self, task: TaskId) -> S {
        self.completions[task.0].clone()
    }

    /// Schedule makespan `max Cᵢ`.
    pub fn makespan(&self) -> S {
        self.completions.iter().cloned().fold(S::zero(), S::max_of)
    }

    /// The paper's objective `Σ wᵢCᵢ`.
    ///
    /// # Panics
    /// Panics when the instance task count differs from the schedule's
    /// (callers pair schedules with the instance that produced them).
    pub fn weighted_completion_cost(&self, instance: &Instance<S>) -> S {
        assert_eq!(
            instance.n(),
            self.completions.len(),
            "instance/schedule task count mismatch"
        );
        S::sum(
            instance
                .iter()
                .map(|(id, t)| t.weight.clone() * self.completions[id.0].clone()),
        )
    }

    /// Unweighted sum of completion times `Σ Cᵢ`.
    pub fn total_completion_time(&self) -> S {
        S::sum(self.completions.iter().cloned())
    }

    /// Task completion order (earliest first, ties by id).
    pub fn completion_order(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..self.completions.len()).map(TaskId).collect();
        ids.sort_by(|a, b| {
            self.completions[a.0]
                .total_cmp_s(&self.completions[b.0])
                .then(a.0.cmp(&b.0))
        });
        ids
    }

    /// Area allocated to `task` across all columns.
    pub fn allocated_area(&self, task: TaskId) -> S {
        S::sum(self.columns.iter().filter_map(|c| {
            let r = c.rate_of(task);
            if r.is_positive() {
                Some(r * c.len())
            } else {
                None
            }
        }))
    }

    /// Validate with the scalar's natural tolerance scaled by schedule size
    /// (a no-op scaling for exact scalars, whose tolerance is zero).
    pub fn validate(&self, instance: &Instance<S>) -> Result<(), ScheduleError> {
        let scale = 1.0 + self.columns.len() as f64;
        self.validate_with(instance, S::default_tolerance().scaled(scale))
    }

    /// Full validity check against Definition 2:
    ///
    /// 1. columns are contiguous from `t = 0` with non-negative lengths;
    /// 2. every rate is in `[0, min(δᵢ, P)]`;
    /// 3. per column, `Σᵢ dᵢ,ⱼ ≤ P`;
    /// 4. per task, `Σⱼ dᵢ,ⱼ·lⱼ = Vᵢ`;
    /// 5. no allocation after the recorded completion time, and the last
    ///    allocation reaches it;
    /// 6. when the instance carries arrival times, no allocation before
    ///    the task's release.
    pub fn validate_with(
        &self,
        instance: &Instance<S>,
        tol: Tolerance<S>,
    ) -> Result<(), ScheduleError> {
        if self.completions.len() != instance.n() {
            return Err(ScheduleError::LengthMismatch {
                what: "completion times",
                expected: instance.n(),
                found: self.completions.len(),
            });
        }
        for c in &self.completions {
            if !c.is_finite() || c.is_negative() {
                return Err(ScheduleError::InvalidTime {
                    value: c.to_f64(),
                    context: "completion times",
                });
            }
        }
        let mut prev_end = S::zero();
        for col in &self.columns {
            if !tol.eq(col.start.clone(), prev_end.clone()) {
                return Err(ScheduleError::InvalidTime {
                    value: col.start.to_f64(),
                    context: "column start (not contiguous)",
                });
            }
            if tol.lt(col.end.clone(), col.start.clone()) {
                return Err(ScheduleError::InvalidTime {
                    value: col.end.to_f64(),
                    context: "column end before start",
                });
            }
            prev_end = col.end.clone();

            for (task, rate) in &col.rates {
                if task.0 >= instance.n() {
                    return Err(ScheduleError::LengthMismatch {
                        what: "task id in column",
                        expected: instance.n(),
                        found: task.0,
                    });
                }
                let cap = instance.effective_delta(*task);
                let delta_error = || ScheduleError::DeltaExceeded {
                    task: *task,
                    at: col.start.to_f64(),
                    rate: rate.to_f64(),
                    delta: cap.to_f64(),
                };
                if *rate < -tol.abs.clone() {
                    return Err(delta_error());
                }
                if !tol.le(rate.clone(), cap.clone()) {
                    return Err(delta_error());
                }
                // Allocation strictly after the task's completion time.
                if col.len() > tol.abs
                    && *rate > tol.abs
                    && col.start.clone()
                        > self.completions[task.0].clone() + tol.slack(col.start.clone(), S::zero())
                {
                    return Err(ScheduleError::AllocationAfterCompletion {
                        task: *task,
                        completion: self.completions[task.0].to_f64(),
                        at: col.start.to_f64(),
                    });
                }
                // Allocation strictly before the task's release time
                // (only when the instance carries arrivals).
                if col.len() > tol.abs && *rate > tol.abs {
                    let release = instance.arrival(*task);
                    if release.is_positive() && !tol.ge(col.start.clone(), release.clone()) {
                        return Err(ScheduleError::AllocationBeforeArrival {
                            task: *task,
                            arrival: release.to_f64(),
                            at: col.start.to_f64(),
                        });
                    }
                }
            }
            // Compensated for f64 (see Scalar::sum), exact for exact fields.
            let total = S::sum(col.rates.iter().map(|(_, r)| r.clone()));
            if !tol.le(total.clone(), self.p.clone()) {
                return Err(ScheduleError::CapacityExceeded {
                    at: col.start.to_f64(),
                    total: total.to_f64(),
                    p: self.p.to_f64(),
                });
            }
            // On heterogeneous machines, per-task caps plus the total are
            // necessary but not sufficient: the rates must lie in the
            // capacity oracle's polymatroid (e.g. two δ = 1 tasks on
            // speeds (2, 1, 1) cannot both run at rate 2; two tasks
            // eligible only on machine 0 cannot share more than rate 1).
            // A single-interval flow decides it — exactly, for exact
            // scalars. Restricted assignment carries task identities into
            // the check; level-decomposable models are identity-blind.
            if !instance.machine.uniform() && col.len() > tol.abs && total.is_positive() {
                if instance.machine.restriction().is_some() {
                    let entries: Vec<(usize, S, S)> = col
                        .rates
                        .iter()
                        .map(|(t, r)| (t.0, instance.task(*t).delta.clone(), r.clone()))
                        .collect();
                    if !instance.machine.rates_feasible_assign(&entries, &tol) {
                        let demands: Vec<(usize, S)> = col
                            .rates
                            .iter()
                            .map(|(t, r)| (t.0, r.clone().max_of(S::zero())))
                            .collect();
                        let routable = instance.machine.restricted_rank(&demands);
                        return Err(ScheduleError::EligibilityExceeded {
                            at: col.start.to_f64(),
                            total: total.to_f64(),
                            routable: routable.to_f64(),
                        });
                    }
                } else {
                    let entries: Vec<(S, S)> = col
                        .rates
                        .iter()
                        .map(|(t, r)| (instance.task(*t).delta.clone(), r.clone()))
                        .collect();
                    if !instance.machine.rates_feasible(&entries, &tol) {
                        return Err(ScheduleError::SpeedProfileExceeded {
                            at: col.start.to_f64(),
                            total: total.to_f64(),
                            capacity: self.p.to_f64(),
                        });
                    }
                }
            }
        }
        // Volumes.
        for (id, t) in instance.iter() {
            let area = self.allocated_area(id);
            if !tol.eq(area.clone(), t.volume.clone()) {
                return Err(ScheduleError::VolumeMismatch {
                    task: id,
                    allocated: area.to_f64(),
                    required: t.volume.to_f64(),
                });
            }
        }
        // Completion must coincide with the end of the last positive-rate,
        // positive-length column of each task.
        for (id, _) in instance.iter() {
            let last_alloc = self
                .columns
                .iter()
                .filter(|c| c.len() > tol.abs && c.rate_of(id) > tol.abs)
                .map(|c| c.end.clone())
                .fold(S::zero(), S::max_of);
            if !tol.eq(last_alloc.clone(), self.completions[id.0].clone()) {
                return Err(ScheduleError::AllocationAfterCompletion {
                    task: id,
                    completion: self.completions[id.0].to_f64(),
                    at: last_alloc.to_f64(),
                });
            }
        }
        Ok(())
    }
}

impl<S: Scalar> fmt::Display for ColumnSchedule<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ColumnSchedule (P = {}, {} columns, makespan = {:.4})",
            self.p.to_f64(),
            self.columns.len(),
            self.makespan().to_f64()
        )?;
        for (j, c) in self.columns.iter().enumerate() {
            write!(
                f,
                "  col {j}: [{:.4}, {:.4}]",
                c.start.to_f64(),
                c.end.to_f64()
            )?;
            for (t, r) in &c.rates {
                write!(f, "  {t}:{:.3}", r.to_f64())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn inst() -> Instance {
        // P = 2; two tasks.
        Instance::builder(2.0)
            .task(2.0, 1.0, 1.0) // T0: V=2, δ=1
            .task(2.0, 1.0, 2.0) // T1: V=2, δ=2
            .build()
            .unwrap()
    }

    /// T0 at rate 1 over [0,2]; T1 at rate 1 over [0,2]. Both complete at 2.
    fn valid_schedule() -> ColumnSchedule {
        ColumnSchedule {
            p: 2.0,
            completions: vec![2.0, 2.0],
            columns: vec![Column {
                start: 0.0,
                end: 2.0,
                rates: vec![(TaskId(0), 1.0), (TaskId(1), 1.0)],
            }],
        }
    }

    #[test]
    fn accessors() {
        let s = valid_schedule();
        assert_eq!(s.makespan(), 2.0);
        assert_eq!(s.completion(TaskId(1)), 2.0);
        assert_eq!(s.total_completion_time(), 4.0);
        assert_eq!(s.weighted_completion_cost(&inst()), 4.0);
        assert_eq!(s.allocated_area(TaskId(0)), 2.0);
        assert_eq!(s.completion_order(), vec![TaskId(0), TaskId(1)]);
        assert_eq!(s.columns[0].rate_of(TaskId(7)), 0.0);
        assert_eq!(s.columns[0].total_rate(), 2.0);
        assert!(!s.columns[0].is_empty());
    }

    #[test]
    fn valid_schedule_passes() {
        valid_schedule().validate(&inst()).unwrap();
    }

    #[test]
    fn delta_violation_detected() {
        let mut s = valid_schedule();
        s.columns[0].rates[0].1 = 1.5; // T0 has δ = 1
        match s.validate(&inst()) {
            Err(ScheduleError::DeltaExceeded { task, .. }) => assert_eq!(task, TaskId(0)),
            other => panic!("expected DeltaExceeded, got {other:?}"),
        }
    }

    #[test]
    fn capacity_violation_detected() {
        let mut s = valid_schedule();
        s.columns[0].rates[1].1 = 2.0; // total 3 > P = 2 (δ1 = 2 is fine)
        match s.validate(&inst()) {
            Err(ScheduleError::CapacityExceeded { .. }) => {}
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
    }

    #[test]
    fn volume_mismatch_detected() {
        let mut s = valid_schedule();
        s.columns[0].end = 1.5; // areas now 1.5 ≠ 2
        s.completions = vec![1.5, 1.5];
        match s.validate(&inst()) {
            Err(ScheduleError::VolumeMismatch { task, .. }) => assert_eq!(task, TaskId(0)),
            other => panic!("expected VolumeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn allocation_after_completion_detected() {
        let mut s = valid_schedule();
        s.completions[0] = 1.0; // claims T0 completes at 1 but it runs to 2
        match s.validate(&inst()) {
            Err(ScheduleError::AllocationAfterCompletion { task, .. }) => {
                assert_eq!(task, TaskId(0))
            }
            other => panic!("expected AllocationAfterCompletion, got {other:?}"),
        }
    }

    #[test]
    fn non_contiguous_columns_detected() {
        let mut s = valid_schedule();
        s.columns.push(Column {
            start: 5.0,
            end: 6.0,
            rates: vec![],
        });
        assert!(matches!(
            s.validate(&inst()),
            Err(ScheduleError::InvalidTime { .. })
        ));
    }

    #[test]
    fn zero_length_columns_are_legal() {
        let mut s = valid_schedule();
        s.columns.push(Column {
            start: 2.0,
            end: 2.0,
            rates: vec![],
        });
        s.validate(&inst()).unwrap();
    }

    #[test]
    fn eligibility_violation_detected() {
        // Tasks 0 and 1 are both eligible only on machine 0; task 2 owns
        // {1, 2}. Total rate 3 fits P = 3 and every δ cap, but tasks 0
        // and 1 together route at most 1 through machine 0.
        let inst = Instance::builder(0.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .restricted(3, vec![vec![0], vec![0], vec![1, 2]])
            .build()
            .unwrap();
        let s = ColumnSchedule {
            p: 3.0,
            completions: vec![1.0, 1.0, 1.0],
            columns: vec![Column {
                start: 0.0,
                end: 1.0,
                rates: vec![(TaskId(0), 1.0), (TaskId(1), 1.0), (TaskId(2), 1.0)],
            }],
        };
        match s.validate(&inst) {
            Err(ScheduleError::EligibilityExceeded {
                total, routable, ..
            }) => {
                assert!((total - 3.0).abs() < 1e-12);
                assert!((routable - 2.0).abs() < 1e-12);
            }
            other => panic!("expected EligibilityExceeded, got {other:?}"),
        }
        // The same rates route cleanly once task 1 moves to machine 1.
        let ok = Instance::builder(0.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .restricted(3, vec![vec![0], vec![1], vec![1, 2]])
            .build()
            .unwrap();
        s.validate(&ok).unwrap();
    }

    #[test]
    fn allocation_before_arrival_detected() {
        // Same schedule, but T1 only arrives at t = 1: the [0,2] column
        // allocates it too early.
        let timed = inst().with_arrivals(vec![0.0, 1.0]).unwrap();
        match valid_schedule().validate(&timed) {
            Err(ScheduleError::AllocationBeforeArrival { task, arrival, .. }) => {
                assert_eq!(task, TaskId(1));
                assert_eq!(arrival, 1.0);
            }
            other => panic!("expected AllocationBeforeArrival, got {other:?}"),
        }
        // A schedule that waits for the arrival passes: T0 alone on [0,1],
        // both at rate 1 on [1,2], T1 alone on [2,3].
        let waiting = ColumnSchedule {
            p: 2.0,
            completions: vec![2.0, 3.0],
            columns: vec![
                Column {
                    start: 0.0,
                    end: 1.0,
                    rates: vec![(TaskId(0), 1.0)],
                },
                Column {
                    start: 1.0,
                    end: 2.0,
                    rates: vec![(TaskId(0), 1.0), (TaskId(1), 1.0)],
                },
                Column {
                    start: 2.0,
                    end: 3.0,
                    rates: vec![(TaskId(1), 1.0)],
                },
            ],
        };
        waiting.validate(&timed).unwrap();
        // All-zero arrivals change nothing.
        let zeroed = inst().with_arrivals(vec![0.0, 0.0]).unwrap();
        valid_schedule().validate(&zeroed).unwrap();
    }

    #[test]
    fn length_mismatch_detected() {
        let s = valid_schedule();
        let bigger = Instance::builder(2.0)
            .tasks([(2.0, 1.0, 1.0), (2.0, 1.0, 2.0), (1.0, 1.0, 1.0)])
            .build()
            .unwrap();
        assert!(matches!(
            s.validate(&bigger),
            Err(ScheduleError::LengthMismatch { .. })
        ));
    }
}
