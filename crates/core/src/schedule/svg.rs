//! SVG rendering of Gantt charts.
//!
//! Self-contained (no template or XML crates): emits a minimal SVG with
//! one rectangle per run, a distinct hue per task, and a time axis.
//! Useful for eyeballing preemption structure — the ASCII renderer in
//! [`crate::schedule::gantt`] caps out quickly on dense schedules.

use crate::instance::TaskId;
use crate::schedule::gantt::Gantt;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Total drawing width in pixels (time axis).
    pub width: f64,
    /// Height of one processor lane in pixels.
    pub lane_height: f64,
    /// Gap between lanes in pixels.
    pub lane_gap: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800.0,
            lane_height: 24.0,
            lane_gap: 4.0,
        }
    }
}

/// Stable distinct-ish color for a task (golden-angle hue walk).
fn task_color(t: TaskId) -> String {
    let hue = (t.0 as f64 * 137.508) % 360.0;
    format!("hsl({hue:.1}, 65%, 55%)")
}

/// Render a Gantt chart as an SVG document string.
pub fn gantt_to_svg(gantt: &Gantt, opts: SvgOptions) -> String {
    let span = gantt.makespan().max(1e-12);
    let margin = 40.0;
    let axis_h = 24.0;
    let w = opts.width + 2.0 * margin;
    let h = margin + gantt.n_procs as f64 * (opts.lane_height + opts.lane_gap) + axis_h;
    let x_of = |t: f64| margin + t / span * opts.width;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
    for (p, lane) in gantt.lanes.iter().enumerate() {
        let y = margin / 2.0 + p as f64 * (opts.lane_height + opts.lane_gap);
        let _ = writeln!(
            svg,
            r#"<text x="4" y="{:.1}" font-size="12" font-family="monospace">P{p}</text>"#,
            y + opts.lane_height * 0.7
        );
        for seg in lane {
            let x0 = x_of(seg.start);
            let x1 = x_of(seg.end);
            let _ = writeln!(
                svg,
                r#"<rect x="{x0:.2}" y="{y:.2}" width="{:.2}" height="{:.2}" fill="{}" stroke="black" stroke-width="0.5"><title>T{} [{:.4}, {:.4}]</title></rect>"#,
                (x1 - x0).max(0.5),
                opts.lane_height,
                task_color(seg.task),
                seg.task.0,
                seg.start,
                seg.end,
            );
        }
    }
    // Time axis.
    let y_axis = h - axis_h + 4.0;
    let _ = writeln!(
        svg,
        r#"<line x1="{:.1}" y1="{y_axis:.1}" x2="{:.1}" y2="{y_axis:.1}" stroke="black"/>"#,
        x_of(0.0),
        x_of(span)
    );
    for k in 0..=4 {
        let t = span * k as f64 / 4.0;
        let x = x_of(t);
        let _ = writeln!(
            svg,
            r#"<text x="{x:.1}" y="{:.1}" font-size="10" font-family="monospace" text-anchor="middle">{t:.2}</text>"#,
            y_axis + 14.0
        );
        let _ = writeln!(
            svg,
            r#"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{y_axis:.1}" stroke="black"/>"#,
            y_axis - 3.0
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::gantt::GanttSegment;

    fn demo() -> Gantt {
        Gantt {
            n_procs: 2,
            lanes: vec![
                vec![GanttSegment {
                    start: 0.0,
                    end: 2.0,
                    task: TaskId(0),
                }],
                vec![GanttSegment {
                    start: 1.0,
                    end: 3.0,
                    task: TaskId(1),
                }],
            ],
        }
    }

    #[test]
    fn produces_wellformed_svg() {
        let svg = gantt_to_svg(&demo(), SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per run plus background.
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("T0 [0.0000, 2.0000]"));
        assert!(svg.contains("P0"));
        assert!(svg.contains("P1"));
    }

    #[test]
    fn colors_are_stable_and_distinct() {
        assert_eq!(task_color(TaskId(3)), task_color(TaskId(3)));
        assert_ne!(task_color(TaskId(0)), task_color(TaskId(1)));
    }

    #[test]
    fn empty_gantt_renders() {
        let svg = gantt_to_svg(&Gantt::empty(3), SvgOptions::default());
        assert!(svg.contains("</svg>"));
    }
}
