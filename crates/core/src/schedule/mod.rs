//! Schedule representations and conversions.
//!
//! The paper works with two equivalent formulations (Theorem 3):
//!
//! * [`column::ColumnSchedule`] — the *column-based fractional* form
//!   (`MWCT-CB-F`, Definition 2): between two consecutive completion times
//!   every task holds a constant, possibly fractional, number of
//!   processors. This is the canonical internal representation.
//! * [`step::StepSchedule`] — the general form (`MWCT`, Definition 1): an
//!   arbitrary piecewise-constant allocation `dᵢ(t)` per task, integer or
//!   fractional.
//! * [`gantt::Gantt`] — fully resolved per-processor timelines, the level
//!   at which *preemptions* (Theorems 9/10) are counted.
//!
//! [`convert`] implements the Theorem-3 transformations between the three.

pub mod column;
pub mod convert;
pub mod gantt;
pub mod step;
pub mod svg;
