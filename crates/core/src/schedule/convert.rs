//! The Theorem-3 transformations between schedule representations.
//!
//! * [`column_to_gantt`] — the *fractional → integer* direction (Figure 2
//!   of the paper): inside each column, task areas are wrapped row-by-row
//!   across the processor×time rectangle, so each task's processor count at
//!   any instant is `⌊dᵢⱼ⌋` or `⌈dᵢⱼ⌉` and the per-column processor set of
//!   a task changes at most twice.
//! * [`step_to_column`] — the *averaging* direction: within each column a
//!   task's fractional rate is its average allocation there.
//! * [`assign_processors_stable`] — the Lemma-6/10 assignment: processors,
//!   once granted, are kept until the allocation shrinks, making the number
//!   of Gantt preemptions equal the number of resource changes.
//!
//! All conversions are generic over the scalar: with exact rationals the
//! Figure-2 wrap conserves areas exactly and the sliver thresholds below
//! vanish (they scale with the tolerance's relative slack, which is zero on
//! exact fields).

use crate::error::ScheduleError;
use crate::instance::{Instance, TaskId};
use crate::schedule::column::{Column, ColumnSchedule};
use crate::schedule::gantt::{Gantt, GanttSegment};
use crate::schedule::step::{Segment, StepSchedule};
use numkit::{Scalar, Tolerance};

/// Check that `x` is integral within `tol` and return it as `usize`.
fn integral<S: Scalar>(
    x: &S,
    what: &'static str,
    tol: &Tolerance<S>,
) -> Result<usize, ScheduleError> {
    let r = x.to_f64().round();
    if r < 0.0 || !tol.eq(x.clone(), S::from_f64(r)) {
        return Err(ScheduleError::InvalidInstance {
            reason: format!("{what} must be a non-negative integer, got {x:?}"),
        });
    }
    Ok(r as usize)
}

/// Fractional column schedule → per-processor Gantt chart (Theorem 3,
/// Figure 2). Requires an integer machine (`P ∈ ℕ`) and integer caps
/// (`δᵢ ∈ ℕ`): with integral `δᵢ`, `⌈dᵢⱼ⌉ ≤ δᵢ`, so the wrapped layout
/// never violates a cap.
///
/// Completion times in the result are `≤` the column schedule's (a task
/// whose last fragment fits strictly inside its final column finishes
/// early; the paper's transformation has the same property).
///
/// # Errors
/// * [`ScheduleError::InvalidInstance`] when `P` or any participating
///   `δᵢ` is not integral;
/// * [`ScheduleError::CapacityExceeded`] when a column's total area
///   overflows `P × l` beyond tolerance.
pub fn column_to_gantt<S: Scalar>(
    cs: &ColumnSchedule<S>,
    instance: &Instance<S>,
    tol: Tolerance<S>,
) -> Result<Gantt<S>, ScheduleError> {
    let n_procs = integral(&cs.p, "P", &tol)?;
    let mut gantt = Gantt::empty(n_procs);

    for col in &cs.columns {
        let l = col.len();
        if l <= tol.abs {
            continue;
        }
        // All cursor arithmetic below is *relative to this column*: a very
        // short column must not be distorted by absolute slack, so sliver
        // thresholds scale with `l` (and vanish entirely on exact scalars,
        // whose relative slack is zero).
        let eps_t = l.clone() * tol.rel.clone(); // negligible time in-column
        let eps_a = eps_t.clone(); // negligible area (one proc × eps_t)
        let mut lane = 0usize;
        let mut offset = S::zero();
        for (task, rate) in &col.rates {
            if rate.clone() * l.clone() <= eps_a {
                continue;
            }
            integral(&instance.task(*task).delta, "δ", &tol)?;
            let mut area = rate.clone() * l.clone();
            while area > eps_a {
                if lane >= n_procs {
                    // Residual beyond the machine: tolerate accumulated
                    // float drift (relative to the column's full area),
                    // reject anything structural. Exact runs tolerate
                    // nothing.
                    let drift_allowance =
                        cs.p.clone() * l.clone() * tol.rel.clone() * S::from_int(100);
                    if area <= drift_allowance {
                        break;
                    }
                    return Err(ScheduleError::CapacityExceeded {
                        at: col.start.to_f64(),
                        total: (cs.p.clone() + area / l).to_f64(),
                        p: cs.p.to_f64(),
                    });
                }
                let take = (l.clone() - offset.clone()).min_of(area.clone());
                if take > eps_t {
                    gantt.lanes[lane].push(GanttSegment {
                        start: col.start.clone() + offset.clone(),
                        end: col.start.clone() + offset.clone() + take.clone(),
                        task: *task,
                    });
                }
                area = area - take.clone();
                offset = offset + take;
                if offset.clone() + eps_t.clone() >= l {
                    lane += 1;
                    offset = S::zero();
                }
            }
        }
    }
    // Lanes were appended column-by-column in time order, but within one
    // lane a later column's segment always starts at or after the previous
    // column's end, so each lane is already sorted. Merge abutting segments
    // of the same task to keep preemption counting honest.
    for lane in &mut gantt.lanes {
        let mut merged: Vec<GanttSegment<S>> = Vec::with_capacity(lane.len());
        for seg in lane.drain(..) {
            match merged.last_mut() {
                Some(prev)
                    if prev.task == seg.task && tol.eq(prev.end.clone(), seg.start.clone()) =>
                {
                    prev.end = seg.end;
                }
                _ => merged.push(seg),
            }
        }
        *lane = merged;
    }
    Ok(gantt)
}

/// Gantt chart → step schedule: per task, the integer processor count as a
/// piecewise-constant function of time.
#[allow(clippy::needless_range_loop)] // task id doubles as array index
pub fn gantt_to_step<S: Scalar>(
    gantt: &Gantt<S>,
    p: S,
    n_tasks: usize,
    tol: Tolerance<S>,
) -> StepSchedule<S> {
    let mut allocs = vec![Vec::<Segment<S>>::new(); n_tasks];
    let half = S::from_f64(0.5);
    for i in 0..n_tasks {
        let runs = gantt.runs_of(TaskId(i));
        if runs.is_empty() {
            continue;
        }
        let mut times: Vec<S> = runs
            .iter()
            .flat_map(|(_, s, e)| [s.clone(), e.clone()])
            .collect();
        times.sort_by(S::total_cmp_s);
        times.dedup_by(|a, b| tol.eq(a.clone(), b.clone()));
        let segs = &mut allocs[i];
        for w in times.windows(2) {
            if w[1].clone() - w[0].clone() <= tol.abs {
                continue;
            }
            let mid = half.clone() * (w[0].clone() + w[1].clone());
            let count = runs
                .iter()
                .filter(|(_, s, e)| *s <= mid && mid < *e)
                .count();
            if count == 0 {
                continue;
            }
            let procs = S::from_int(count as i64);
            match segs.last_mut() {
                Some(prev) if tol.eq(prev.end.clone(), w[0].clone()) && prev.procs == procs => {
                    prev.end = w[1].clone();
                }
                _ => segs.push(Segment {
                    start: w[0].clone(),
                    end: w[1].clone(),
                    procs,
                }),
            }
        }
    }
    StepSchedule { p, allocs }
}

/// Column schedule → integer step schedule, via the Figure-2 wrap.
pub fn column_to_step<S: Scalar>(
    cs: &ColumnSchedule<S>,
    instance: &Instance<S>,
    tol: Tolerance<S>,
) -> Result<StepSchedule<S>, ScheduleError> {
    let gantt = column_to_gantt(cs, instance, tol.clone())?;
    Ok(gantt_to_step(&gantt, cs.p.clone(), instance.n(), tol))
}

/// Step schedule → column schedule (the averaging direction of Theorem 3):
/// columns are delimited by the distinct task completion times, and each
/// task's rate in a column is its average allocation there. Rates stay
/// within `δᵢ` and capacity `P` because averages of valid instantaneous
/// allocations are valid (the paper's proof of Theorem 3).
pub fn step_to_column<S: Scalar>(ss: &StepSchedule<S>, tol: Tolerance<S>) -> ColumnSchedule<S> {
    let completions = ss.completion_times();
    let mut bounds: Vec<S> = completions
        .iter()
        .filter(|c| **c > tol.abs)
        .cloned()
        .collect();
    bounds.sort_by(S::total_cmp_s);
    bounds.dedup_by(|a, b| tol.eq(a.clone(), b.clone()));

    let mut columns = Vec::with_capacity(bounds.len());
    let mut prev = S::zero();
    for b in &bounds {
        let l = b.clone() - prev.clone();
        let mut rates = Vec::new();
        if l > tol.abs {
            for (i, segs) in ss.allocs.iter().enumerate() {
                let mut area = S::zero();
                for s in segs {
                    let lo = s.start.clone().max_of(prev.clone());
                    let hi = s.end.clone().min_of(b.clone());
                    if hi > lo {
                        area = area + s.procs.clone() * (hi - lo);
                    }
                }
                if area > tol.abs.clone() * l.clone() {
                    rates.push((TaskId(i), area / l.clone()));
                }
            }
        }
        columns.push(Column {
            start: prev.clone(),
            end: b.clone(),
            rates,
        });
        prev = b.clone();
    }
    ColumnSchedule {
        p: ss.p.clone(),
        completions,
        columns,
    }
}

/// Lemma-6/10 stable processor assignment for an **integer** step schedule:
/// at each event, tasks whose count shrank release their most recently
/// acquired processors, then tasks whose count grew take the lowest free
/// ids. A processor granted to a task is never reclaimed while the task's
/// count stays put, so the resulting Gantt has exactly one preemption per
/// resource change — the property Theorem 10 builds on.
///
/// # Errors
/// [`ScheduleError::InvalidInstance`] when `P` or any segment count is not
/// integral, or [`ScheduleError::CapacityExceeded`] when counts overflow
/// the machine.
pub fn assign_processors_stable<S: Scalar>(
    ss: &StepSchedule<S>,
    tol: Tolerance<S>,
) -> Result<Gantt<S>, ScheduleError> {
    let n_procs = integral(&ss.p, "P", &tol)?;
    let n = ss.n();
    let events = ss.event_times(tol.clone());
    let mut gantt = Gantt::empty(n_procs);
    let half = S::from_f64(0.5);

    // Ownership state.
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); n]; // LIFO per task
    let mut free: Vec<usize> = (0..n_procs).rev().collect(); // pop() = lowest id
    let mut lane_open: Vec<Option<(TaskId, S)>> = vec![None; n_procs]; // (task, since)

    for w in events.windows(2) {
        let (t0, t1) = (&w[0], &w[1]);
        if t1.clone() - t0.clone() <= tol.abs {
            continue;
        }
        let mid = half.clone() * (t0.clone() + t1.clone());
        // Required integer counts on [t0, t1).
        let mut required = vec![0usize; n];
        for (i, slot) in required.iter_mut().enumerate() {
            *slot = integral(
                &ss.rate_at(TaskId(i), mid.clone()),
                "segment processor count",
                &tol,
            )?;
        }
        // Release phase.
        for i in 0..n {
            while owned[i].len() > required[i] {
                let p = owned[i].pop().expect("len > required ≥ 0");
                if let Some((task, since)) = lane_open[p].take() {
                    gantt.lanes[p].push(GanttSegment {
                        start: since,
                        end: t0.clone(),
                        task,
                    });
                }
                free.push(p);
            }
        }
        // Re-sort descending so pop() keeps handing out the lowest free id.
        free.sort_unstable_by(|a, b| b.cmp(a));
        // Acquire phase.
        for i in 0..n {
            while owned[i].len() < required[i] {
                let Some(p) = free.pop() else {
                    return Err(ScheduleError::CapacityExceeded {
                        at: t0.to_f64(),
                        total: required.iter().sum::<usize>() as f64,
                        p: ss.p.to_f64(),
                    });
                };
                owned[i].push(p);
                debug_assert!(lane_open[p].is_none());
                lane_open[p] = Some((TaskId(i), t0.clone()));
            }
        }
    }
    // Close remaining runs at the final event.
    let end = events.last().cloned().unwrap_or_else(S::zero);
    for (p, open) in lane_open.iter_mut().enumerate() {
        if let Some((task, since)) = open.take() {
            gantt.lanes[p].push(GanttSegment {
                start: since,
                end: end.clone(),
                task,
            });
        }
    }
    Ok(gantt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn tol() -> Tolerance {
        Tolerance::default()
    }

    /// P = 3; T0 (δ=2) and T1 (δ=3) share columns with fractional rates.
    fn fractional_case() -> (Instance, ColumnSchedule) {
        let inst = Instance::builder(3.0)
            .task(3.0, 1.0, 2.0) // T0
            .task(4.5, 1.0, 3.0) // T1
            .build()
            .unwrap();
        let cs = ColumnSchedule {
            p: 3.0,
            completions: vec![2.0, 3.0],
            columns: vec![
                Column {
                    start: 0.0,
                    end: 2.0,
                    rates: vec![(TaskId(0), 1.5), (TaskId(1), 1.0)],
                },
                Column {
                    start: 2.0,
                    end: 3.0,
                    rates: vec![(TaskId(1), 2.5)],
                },
            ],
        };
        cs.validate(&inst).unwrap();
        (inst, cs)
    }

    #[test]
    fn wrap_produces_valid_integer_schedule() {
        let (inst, cs) = fractional_case();
        let gantt = column_to_gantt(&cs, &inst, tol()).unwrap();
        gantt.validate(tol()).unwrap();
        let step = gantt_to_step(&gantt, 3.0, 2, tol());
        // Integer counts only.
        for segs in &step.allocs {
            for s in segs {
                assert_eq!(s.procs, s.procs.round());
            }
        }
        // Volumes preserved.
        assert!((step.allocated_area(TaskId(0)) - 3.0).abs() < 1e-9);
        assert!((step.allocated_area(TaskId(1)) - 4.5).abs() < 1e-9);
        // The instantaneous count is ⌊d⌋ or ⌈d⌉ of the fractional rate:
        // T0 held 1.5 procs on [0,2] → counts in {1, 2}.
        for s in &step.allocs[0] {
            assert!(s.procs == 1.0 || s.procs == 2.0, "count {}", s.procs);
        }
        // Completion times never increase.
        let cs2 = step.completion_times();
        assert!(cs2[0] <= 2.0 + 1e-9);
        assert!(cs2[1] <= 3.0 + 1e-9);
        // Step schedule is valid for the instance (volume + caps + capacity).
        step.validate(&inst).unwrap();
    }

    #[test]
    fn exact_wrap_conserves_areas_exactly() {
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        let (inst_f, cs_f) = fractional_case();
        let inst: Instance<Rational> = inst_f.to_scalar();
        let cs = ColumnSchedule {
            p: q(3.0),
            completions: cs_f.completions.iter().map(|&c| q(c)).collect(),
            columns: cs_f
                .columns
                .iter()
                .map(|c| Column {
                    start: q(c.start),
                    end: q(c.end),
                    rates: c.rates.iter().map(|&(t, r)| (t, q(r))).collect(),
                })
                .collect(),
        };
        let step = column_to_step(&cs, &inst, Tolerance::exact()).unwrap();
        assert_eq!(step.allocated_area(TaskId(0)), q(3.0));
        assert_eq!(step.allocated_area(TaskId(1)), q(4.5));
        step.validate(&inst).unwrap(); // zero tolerance
        let back = step_to_column(&step, Tolerance::exact());
        assert_eq!(back.allocated_area(TaskId(0)), q(3.0));
    }

    #[test]
    fn wrap_rejects_fractional_p() {
        let (inst, mut cs) = fractional_case();
        cs.p = 2.5;
        assert!(matches!(
            column_to_gantt(&cs, &inst, tol()),
            Err(ScheduleError::InvalidInstance { .. })
        ));
    }

    #[test]
    fn wrap_rejects_fractional_delta() {
        let inst = Instance::builder(3.0).task(3.0, 1.0, 1.5).build().unwrap();
        let cs = ColumnSchedule {
            p: 3.0,
            completions: vec![2.0],
            columns: vec![Column {
                start: 0.0,
                end: 2.0,
                rates: vec![(TaskId(0), 1.5)],
            }],
        };
        assert!(matches!(
            column_to_gantt(&cs, &inst, tol()),
            Err(ScheduleError::InvalidInstance { .. })
        ));
    }

    #[test]
    fn roundtrip_column_step_column() {
        let (inst, cs) = fractional_case();
        let step = column_to_step(&cs, &inst, tol()).unwrap();
        let back = step_to_column(&step, tol());
        back.validate(&inst).unwrap();
        // Completion times only improve through the integer conversion.
        for i in 0..2 {
            assert!(back.completions[i] <= cs.completions[i] + 1e-9);
        }
        // Total areas preserved.
        assert!((back.allocated_area(TaskId(0)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn averaging_direction_respects_caps() {
        // T0 runs at 2 procs on [0,1] (δ = 2); its average in its single
        // column is exactly 2 ≤ δ, and totals stay within P = 3.
        let ss = StepSchedule {
            p: 3.0,
            allocs: vec![
                vec![Segment {
                    start: 0.0,
                    end: 1.0,
                    procs: 2.0,
                }],
                vec![Segment {
                    start: 0.0,
                    end: 2.0,
                    procs: 1.0,
                }],
            ],
        };
        let inst = Instance::builder(3.0)
            .task(2.0, 1.0, 2.0)
            .task(2.0, 1.0, 1.0)
            .build()
            .unwrap();
        let cs = step_to_column(&ss, tol());
        cs.validate(&inst).unwrap();
        assert_eq!(cs.columns.len(), 2);
        assert!((cs.columns[0].rate_of(TaskId(0)) - 2.0).abs() < 1e-12);
        assert_eq!(cs.columns[1].rate_of(TaskId(0)), 0.0);
    }

    #[test]
    fn stable_assignment_matches_resource_changes() {
        // T0: 1 proc on [0,3]. T1: 1 proc on [0,1], 2 on [1,2], 1 on [2,3].
        let ss = StepSchedule {
            p: 3.0,
            allocs: vec![
                vec![Segment {
                    start: 0.0,
                    end: 3.0,
                    procs: 1.0,
                }],
                vec![
                    Segment {
                        start: 0.0,
                        end: 1.0,
                        procs: 1.0,
                    },
                    Segment {
                        start: 1.0,
                        end: 2.0,
                        procs: 2.0,
                    },
                    Segment {
                        start: 2.0,
                        end: 3.0,
                        procs: 1.0,
                    },
                ],
            ],
        };
        let gantt = assign_processors_stable(&ss, tol()).unwrap();
        gantt.validate(tol()).unwrap();
        // T1 changes count twice; T0 never. Preemptions == resource changes.
        assert_eq!(ss.resource_changes(tol()), 2);
        assert_eq!(gantt.preemption_count(2, tol()), 2);
        // T0 kept its processor the whole time (zero preemptions).
        assert_eq!(gantt.preemptions_of(TaskId(0), tol()), 0);
    }

    #[test]
    fn stable_assignment_rejects_overflow() {
        let ss = StepSchedule {
            p: 1.0,
            allocs: vec![vec![Segment {
                start: 0.0,
                end: 1.0,
                procs: 2.0,
            }]],
        };
        assert!(matches!(
            assign_processors_stable(&ss, tol()),
            Err(ScheduleError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn empty_schedules_convert() {
        let ss = StepSchedule::empty(2.0, 2);
        let cs = step_to_column(&ss, tol());
        assert!(cs.columns.is_empty());
        let g = assign_processors_stable(&ss, tol()).unwrap();
        assert_eq!(g.makespan(), 0.0);
    }
}
