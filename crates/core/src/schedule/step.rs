//! Piecewise-constant step schedules (`MWCT`, Definition 1).
//!
//! A [`StepSchedule`] stores, per task, the maximal intervals on which its
//! allocation `dᵢ(t)` is constant and positive. This is the representation
//! produced by Greedy (whose allocation changes *within* columns of other
//! tasks) and by the Theorem-3 fractional→integer conversion, and the input
//! to processor assignment ([`crate::schedule::gantt`]).
//!
//! Generic over the scalar field, like the rest of the schedule stack.

use crate::error::ScheduleError;
use crate::instance::{Instance, TaskId};
use numkit::{Scalar, Tolerance};

/// A maximal interval of constant positive allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment<S = f64> {
    /// Interval start.
    pub start: S,
    /// Interval end (`end > start`).
    pub end: S,
    /// Processors held throughout the interval (fractional allowed).
    pub procs: S,
}

impl<S: Scalar> Segment<S> {
    /// Area `procs × (end − start)`.
    pub fn area(&self) -> S {
        self.procs.clone() * self.len()
    }

    /// Duration.
    pub fn len(&self) -> S {
        self.end.clone() - self.start.clone()
    }

    /// `true` iff zero-length.
    pub fn is_empty(&self) -> bool {
        !self.len().is_positive()
    }
}

/// A full step schedule: per-task segment lists.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSchedule<S = f64> {
    /// Machine capacity.
    pub p: S,
    /// `allocs[i]` = time-sorted, non-overlapping segments of task `i`.
    pub allocs: Vec<Vec<Segment<S>>>,
}

impl<S: Scalar> StepSchedule<S> {
    /// An empty schedule for `n` tasks on capacity `p`.
    pub fn empty(p: S, n: usize) -> Self {
        StepSchedule {
            p,
            allocs: vec![Vec::new(); n],
        }
    }

    /// Number of tasks.
    pub fn n(&self) -> usize {
        self.allocs.len()
    }

    /// Completion time of each task (`0` for never-scheduled tasks).
    pub fn completion_times(&self) -> Vec<S> {
        self.allocs
            .iter()
            .map(|segs| segs.last().map_or(S::zero(), |s| s.end.clone()))
            .collect()
    }

    /// Makespan.
    pub fn makespan(&self) -> S {
        self.completion_times()
            .into_iter()
            .fold(S::zero(), S::max_of)
    }

    /// `Σ wᵢCᵢ`.
    ///
    /// # Panics
    /// Panics on instance/schedule task-count mismatch.
    pub fn weighted_completion_cost(&self, instance: &Instance<S>) -> S {
        assert_eq!(instance.n(), self.n(), "task count mismatch");
        let cs = self.completion_times();
        S::sum(
            instance
                .iter()
                .map(|(id, t)| t.weight.clone() * cs[id.0].clone()),
        )
    }

    /// Area allocated to one task.
    pub fn allocated_area(&self, task: TaskId) -> S {
        S::sum(self.allocs[task.0].iter().map(Segment::area))
    }

    /// The paper's *resource-change* count (Lemmas 5 and 9): the number of
    /// instants, strictly between a task's first start and final completion,
    /// at which its allocation `dᵢ(t)` changes. Adjacent segments with
    /// different rates contribute 1; a gap (allocation drops to zero and
    /// resumes) contributes 2.
    pub fn resource_changes(&self, tol: Tolerance<S>) -> usize {
        let mut changes = 0;
        for segs in &self.allocs {
            for w in segs.windows(2) {
                if tol.eq(w[0].end.clone(), w[1].start.clone()) {
                    if !tol.eq(w[0].procs.clone(), w[1].procs.clone()) {
                        changes += 1;
                    }
                } else {
                    changes += 2; // → 0 → back up
                }
            }
        }
        changes
    }

    /// Allocation of `task` at time `t` (0 outside its segments).
    pub fn rate_at(&self, task: TaskId, t: S) -> S {
        self.allocs[task.0]
            .iter()
            .find(|s| s.start <= t && t < s.end)
            .map_or(S::zero(), |s| s.procs.clone())
    }

    /// All segment boundaries, sorted and deduplicated (within `tol`).
    pub fn event_times(&self, tol: Tolerance<S>) -> Vec<S> {
        let mut ts: Vec<S> = self
            .allocs
            .iter()
            .flatten()
            .flat_map(|s| [s.start.clone(), s.end.clone()])
            .collect();
        ts.push(S::zero());
        ts.sort_by(S::total_cmp_s);
        ts.dedup_by(|a, b| tol.eq(a.clone(), b.clone()));
        ts
    }

    /// Validity per Definition 1:
    /// 1. segments sorted, positive-length, non-overlapping per task;
    /// 2. `0 ≤ dᵢ(t) ≤ min(δᵢ, P)`;
    /// 3. `Σᵢ dᵢ(t) ≤ P` at every time;
    /// 4. `∫ dᵢ = Vᵢ`.
    pub fn validate(&self, instance: &Instance<S>) -> Result<(), ScheduleError> {
        let scale = 1.0 + self.allocs.iter().map(|s| s.len()).max().unwrap_or(0) as f64;
        self.validate_with(instance, S::default_tolerance().scaled(scale))
    }

    /// [`StepSchedule::validate`] with an explicit tolerance.
    pub fn validate_with(
        &self,
        instance: &Instance<S>,
        tol: Tolerance<S>,
    ) -> Result<(), ScheduleError> {
        if self.n() != instance.n() {
            return Err(ScheduleError::LengthMismatch {
                what: "step schedule tasks",
                expected: instance.n(),
                found: self.n(),
            });
        }
        for (i, segs) in self.allocs.iter().enumerate() {
            let id = TaskId(i);
            let cap = instance.effective_delta(id);
            let mut prev_end = S::zero();
            for s in segs {
                if !s.start.is_finite() || !s.end.is_finite() || s.start < -tol.abs.clone() {
                    return Err(ScheduleError::InvalidTime {
                        value: s.start.to_f64(),
                        context: "segment bounds",
                    });
                }
                if s.end <= s.start {
                    return Err(ScheduleError::InvalidTime {
                        value: s.end.to_f64(),
                        context: "segment end ≤ start",
                    });
                }
                if s.start.clone() + tol.slack(s.start.clone(), prev_end.clone()) < prev_end {
                    return Err(ScheduleError::InvalidTime {
                        value: s.start.to_f64(),
                        context: "overlapping segments within a task",
                    });
                }
                if s.procs < -tol.abs.clone() || !tol.le(s.procs.clone(), cap.clone()) {
                    return Err(ScheduleError::DeltaExceeded {
                        task: id,
                        at: s.start.to_f64(),
                        rate: s.procs.to_f64(),
                        delta: cap.to_f64(),
                    });
                }
                prev_end = s.end.clone();
            }
            let area = self.allocated_area(id);
            if !tol.eq(area.clone(), instance.task(id).volume.clone()) {
                return Err(ScheduleError::VolumeMismatch {
                    task: id,
                    allocated: area.to_f64(),
                    required: instance.task(id).volume.to_f64(),
                });
            }
        }
        // Capacity: sweep over event times, summing rates on each interval.
        let events = self.event_times(tol.clone());
        let half = S::from_f64(0.5);
        for w in events.windows(2) {
            if w[1].clone() - w[0].clone() <= tol.abs {
                continue;
            }
            let mid = half.clone() * (w[0].clone() + w[1].clone());
            let total = S::sum((0..self.n()).map(|i| self.rate_at(TaskId(i), mid.clone())));
            if !tol.le(total.clone(), self.p.clone()) {
                return Err(ScheduleError::CapacityExceeded {
                    at: w[0].to_f64(),
                    total: total.to_f64(),
                    p: self.p.to_f64(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::builder(2.0)
            .task(2.0, 1.0, 1.0)
            .task(3.0, 1.0, 2.0)
            .build()
            .unwrap()
    }

    /// T0: 1 proc on [0,2]. T1: 1 proc on [0,2], then 2 procs on [2,2.5].
    fn sched() -> StepSchedule {
        StepSchedule {
            p: 2.0,
            allocs: vec![
                vec![Segment {
                    start: 0.0,
                    end: 2.0,
                    procs: 1.0,
                }],
                vec![
                    Segment {
                        start: 0.0,
                        end: 2.0,
                        procs: 1.0,
                    },
                    Segment {
                        start: 2.0,
                        end: 2.5,
                        procs: 2.0,
                    },
                ],
            ],
        }
    }

    #[test]
    fn accessors_and_validation() {
        let s = sched();
        assert_eq!(s.completion_times(), vec![2.0, 2.5]);
        assert_eq!(s.makespan(), 2.5);
        assert_eq!(s.allocated_area(TaskId(1)), 3.0);
        assert_eq!(s.weighted_completion_cost(&inst()), 4.5);
        assert_eq!(s.rate_at(TaskId(1), 2.2), 2.0);
        assert_eq!(s.rate_at(TaskId(1), 3.0), 0.0);
        s.validate(&inst()).unwrap();
    }

    #[test]
    fn resource_changes_counts_steps_and_gaps() {
        let tol = Tolerance::default();
        assert_eq!(sched().resource_changes(tol), 1); // T1's 1→2 step
        let gappy = StepSchedule {
            p: 1.0,
            allocs: vec![vec![
                Segment {
                    start: 0.0,
                    end: 1.0,
                    procs: 1.0,
                },
                Segment {
                    start: 2.0,
                    end: 3.0,
                    procs: 1.0,
                },
            ]],
        };
        assert_eq!(gappy.resource_changes(tol), 2);
    }

    #[test]
    fn capacity_sweep_catches_overload() {
        let mut s = sched();
        // Push T0 into T1's 2-processor window: total 3 > P = 2.
        s.allocs[0] = vec![Segment {
            start: 0.5,
            end: 2.5,
            procs: 1.0,
        }];
        assert!(matches!(
            s.validate(&inst()),
            Err(ScheduleError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn delta_and_volume_checks() {
        let mut s = sched();
        s.allocs[0][0].procs = 1.5; // δ0 = 1
        assert!(matches!(
            s.validate(&inst()),
            Err(ScheduleError::DeltaExceeded { .. })
        ));

        let mut s = sched();
        s.allocs[1].pop(); // missing volume
        assert!(matches!(
            s.validate(&inst()),
            Err(ScheduleError::VolumeMismatch { .. })
        ));
    }

    #[test]
    fn overlap_and_ordering_checks() {
        let mut s = sched();
        s.allocs[1] = vec![
            Segment {
                start: 0.0,
                end: 2.0,
                procs: 1.0,
            },
            Segment {
                start: 1.5,
                end: 2.5,
                procs: 1.0,
            },
        ];
        assert!(matches!(
            s.validate(&inst()),
            Err(ScheduleError::InvalidTime { .. })
        ));
    }

    #[test]
    fn empty_schedule() {
        let s = StepSchedule::empty(2.0, 2);
        assert_eq!(s.completion_times(), vec![0.0, 0.0]);
        // Empty schedule fails volume checks against a real instance.
        assert!(matches!(
            s.validate(&inst()),
            Err(ScheduleError::VolumeMismatch { .. })
        ));
    }

    #[test]
    fn event_times_dedup() {
        let s = sched();
        let ev = s.event_times(Tolerance::default());
        assert_eq!(ev, vec![0.0, 2.0, 2.5]);
    }
}
