//! Typed errors for instance construction and schedule validation.

use crate::instance::TaskId;
use std::fmt;

/// Everything that can go wrong when building instances, validating
/// schedules, or running the scheduling algorithms on user input.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// Instance-level parameter problem (non-positive volume, cap, …).
    InvalidInstance {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// A task was allocated more than its parallelism cap `δᵢ`.
    DeltaExceeded {
        /// Offending task.
        task: TaskId,
        /// Time (column start for column schedules) of the violation.
        at: f64,
        /// Allocated rate found.
        rate: f64,
        /// The task's cap.
        delta: f64,
    },
    /// Total allocation exceeded the machine capacity `P`.
    CapacityExceeded {
        /// Time of the violation.
        at: f64,
        /// Total allocated rate found.
        total: f64,
        /// Machine capacity.
        p: f64,
    },
    /// A column's rate vector lies outside the polymatroid of a related
    /// machine's speed profile (some task subset is allocated more than
    /// the fastest machines it may occupy can deliver), even though every
    /// per-task cap and the total capacity hold.
    SpeedProfileExceeded {
        /// Time of the violation.
        at: f64,
        /// Total allocated rate in the offending column.
        total: f64,
        /// Machine capacity.
        capacity: f64,
    },
    /// A column's rate vector cannot be routed through the tasks'
    /// eligibility sets on a restricted-assignment machine (some task
    /// subset demands more than its eligible machines can jointly
    /// deliver), even though every per-task cap and the total capacity
    /// hold.
    EligibilityExceeded {
        /// Time of the violation.
        at: f64,
        /// Total allocated rate in the offending column.
        total: f64,
        /// Portion of that rate actually routable through the
        /// eligibility sets.
        routable: f64,
    },
    /// A task's allocated area does not equal its volume `Vᵢ`.
    VolumeMismatch {
        /// Offending task.
        task: TaskId,
        /// Area actually allocated.
        allocated: f64,
        /// Required volume.
        required: f64,
    },
    /// A task received allocation before its release (arrival) time.
    AllocationBeforeArrival {
        /// Offending task.
        task: TaskId,
        /// The task's release time.
        arrival: f64,
        /// Time at which an earlier allocation was found.
        at: f64,
    },
    /// A task received allocation after its recorded completion time.
    AllocationAfterCompletion {
        /// Offending task.
        task: TaskId,
        /// Recorded completion time.
        completion: f64,
        /// Time at which a later allocation was found.
        at: f64,
    },
    /// The requested completion times admit no valid schedule
    /// (Water-Filling ran out of room — Theorem 8 certifies none exists).
    InfeasibleCompletionTimes {
        /// First task (in completion order) that cannot fit.
        task: TaskId,
        /// Maximal volume placeable for that task, `wfᵢ(P)`.
        placeable: f64,
        /// The task's required volume.
        required: f64,
    },
    /// Mismatched input lengths (e.g. completion vector vs task count).
    LengthMismatch {
        /// What was being measured.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Found length.
        found: usize,
    },
    /// Times must be non-negative and finite.
    InvalidTime {
        /// The offending value.
        value: f64,
        /// Where it appeared.
        context: &'static str,
    },
    /// An iterative solver exhausted its iteration budget without reaching
    /// its termination condition. The parametric threshold searches
    /// terminate combinatorially (each cut is visited at most once), so
    /// this surfaces only on pathological float knife-edges — it is an
    /// explicit error, never a silently-unconverged result.
    Unconverged {
        /// Which solver gave up.
        what: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InvalidInstance { reason } => {
                write!(f, "invalid instance: {reason}")
            }
            ScheduleError::DeltaExceeded {
                task,
                at,
                rate,
                delta,
            } => write!(f, "task {task} allocated {rate} > δ = {delta} at t = {at}"),
            ScheduleError::CapacityExceeded { at, total, p } => {
                write!(f, "total allocation {total} > P = {p} at t = {at}")
            }
            ScheduleError::SpeedProfileExceeded {
                at,
                total,
                capacity,
            } => write!(
                f,
                "allocation of {total} at t = {at} outside the speed-profile polymatroid (P = {capacity})"
            ),
            ScheduleError::EligibilityExceeded { at, total, routable } => write!(
                f,
                "allocation of {total} at t = {at} not routable through the eligibility sets (only {routable} fits)"
            ),
            ScheduleError::VolumeMismatch {
                task,
                allocated,
                required,
            } => write!(
                f,
                "task {task} allocated area {allocated} ≠ volume {required}"
            ),
            ScheduleError::AllocationBeforeArrival { task, arrival, at } => write!(
                f,
                "task {task} allocated at t = {at} before arrival r = {arrival}"
            ),
            ScheduleError::AllocationAfterCompletion {
                task,
                completion,
                at,
            } => write!(
                f,
                "task {task} allocated at t = {at} after completion C = {completion}"
            ),
            ScheduleError::InfeasibleCompletionTimes {
                task,
                placeable,
                required,
            } => write!(
                f,
                "completion times infeasible: task {task} fits only {placeable} of {required}"
            ),
            ScheduleError::LengthMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what}: expected length {expected}, found {found}"),
            ScheduleError::InvalidTime { value, context } => {
                write!(f, "invalid time {value} in {context}")
            }
            ScheduleError::Unconverged { what, iterations } => {
                write!(f, "{what} did not converge within {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ScheduleError::DeltaExceeded {
            task: TaskId(3),
            at: 1.5,
            rate: 2.5,
            delta: 2.0,
        };
        let s = e.to_string();
        assert!(s.contains("T3") || s.contains('3'));
        assert!(s.contains("2.5"));

        let e = ScheduleError::InfeasibleCompletionTimes {
            task: TaskId(0),
            placeable: 1.0,
            required: 2.0,
        };
        assert!(e.to_string().contains("infeasible"));
    }
}
