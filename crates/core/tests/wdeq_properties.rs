//! Property tests for the WDEQ allocation fixpoint (Algorithm 1) and the
//! schedules it produces.

use malleable_core::algos::wdeq::{wdeq_allocation, wdeq_run};
use malleable_core::instance::Instance;
use proptest::prelude::*;

fn entries_strategy() -> impl Strategy<Value = (Vec<(f64, f64)>, f64)> {
    (1usize..=12, 0.5f64..16.0).prop_flat_map(|(n, p)| {
        proptest::collection::vec((0.05f64..4.0, 0.05f64..8.0), n..=n).prop_map(move |mut es| {
            for e in &mut es {
                e.1 = e.1.min(p); // caps pre-clamped like the engine does
            }
            (es, p)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The allocation is the Algorithm-1 fixpoint:
    /// 1. rates within caps and machine capacity;
    /// 2. every weighted task gets a positive rate;
    /// 3. unsaturated tasks share proportionally to weight;
    /// 4. saturated tasks would deserve ≥ their cap under that share;
    /// 5. capacity is exhausted unless *every* task is saturated.
    #[test]
    fn wdeq_allocation_is_the_fair_fixpoint((entries, p) in entries_strategy()) {
        let rates = wdeq_allocation(&entries, p);
        let total: f64 = rates.iter().sum();
        prop_assert!(total <= p + 1e-9);

        for ((w, cap), &r) in entries.iter().zip(&rates) {
            prop_assert!(r <= cap + 1e-9, "rate {r} over cap {cap}");
            prop_assert!(r > 0.0, "weighted task starved (w = {w})");
        }

        // Identify the unsaturated set and its common rate/weight quotient.
        let unsat: Vec<usize> = (0..entries.len())
            .filter(|&i| rates[i] < entries[i].1 - 1e-9)
            .collect();
        if let Some(&i0) = unsat.first() {
            let q0 = rates[i0] / entries[i0].0;
            for &i in &unsat {
                let q = rates[i] / entries[i].0;
                prop_assert!(
                    (q - q0).abs() <= 1e-6 * (1.0 + q0),
                    "unsaturated tasks must share proportionally: {q} vs {q0}"
                );
            }
            // Saturated tasks are exactly those whose fair share at that
            // quotient meets or exceeds their cap.
            for (i, (w, cap)) in entries.iter().enumerate() {
                if !unsat.contains(&i) {
                    prop_assert!(
                        w * q0 >= cap - 1e-6,
                        "task {i} clamped although its share was below its cap"
                    );
                }
            }
            // Unsaturated tasks exist ⇒ all capacity is in use.
            prop_assert!(
                (total - p).abs() <= 1e-6 * (1.0 + p),
                "capacity left over while tasks are rate-limited"
            );
        } else {
            // Everyone saturated: total = Σ caps (≤ P).
            let caps: f64 = entries.iter().map(|e| e.1).sum();
            prop_assert!((total - caps.min(p)).abs() <= 1e-6 * (1.0 + p));
        }
    }

    /// More capacity never hurts any task under WDEQ (completion times are
    /// monotone in P).
    #[test]
    fn wdeq_completions_monotone_in_capacity(
        (entries, p) in entries_strategy(),
        grow in 1.1f64..3.0
    ) {
        let inst_small = Instance::builder(p)
            .tasks(entries.iter().map(|&(w, cap)| (0.5 + w, w, cap)))
            .build()
            .expect("valid");
        let inst_big = Instance::builder(p * grow)
            .tasks(entries.iter().map(|&(w, cap)| (0.5 + w, w, cap)))
            .build()
            .expect("valid");
        let small = wdeq_run(&inst_small).expect("run").schedule;
        let big = wdeq_run(&inst_big).expect("run").schedule;
        // The *last* completion (makespan) cannot get worse; individual
        // completions may reshuffle, but the total cost cannot increase.
        prop_assert!(big.makespan() <= small.makespan() + 1e-6);
        prop_assert!(
            big.weighted_completion_cost(&inst_big)
                <= small.weighted_completion_cost(&inst_small) + 1e-6
        );
    }

    /// Scaling all weights by a constant changes nothing (the share is
    /// scale-invariant).
    #[test]
    fn wdeq_weight_scale_invariance(
        (entries, p) in entries_strategy(),
        scale in 0.1f64..10.0
    ) {
        let a = wdeq_allocation(&entries, p);
        let scaled: Vec<(f64, f64)> =
            entries.iter().map(|&(w, c)| (w * scale, c)).collect();
        let b = wdeq_allocation(&scaled, p);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()));
        }
    }
}
