//! Section V-B: homogeneous instances `P = 1, Vᵢ = wᵢ = 1, δᵢ ∈ [½, 1]`.
//!
//! On this class, greedy schedules have a two-tasks-per-column structure —
//! the position-`i` task is saturated in column `i` while the next task
//! soaks up the rest — giving the closed-form recurrence (paper, §V-B):
//!
//! ```text
//! C_σ(1) = 1/δ_σ(1)
//! C_σ(i) = C_σ(i−1) + (1 − (1 − δ_σ(i−1))·(C_σ(i−1) − C_σ(i−2))) / δ_σ(i)
//! ```
//!
//! The recurrence is implemented generically over [`numkit::Scalar`] so the
//! same code runs in `f64` (fast sweeps) and in `bigratio::Rational`
//! (exact Conjecture-13 verification, the paper's Sage check).

use numkit::Scalar;

/// Completion times of the greedy schedule for caps `deltas` *in schedule
/// order* (i.e. `deltas[i]` is the cap of the i-th scheduled task).
///
/// # Panics
/// Panics if any `δ ∉ [½, 1]` — outside that range the two-per-column
/// structure underlying the recurrence breaks (Theorem 11's hypothesis).
pub fn greedy_completions<S: Scalar>(deltas: &[S]) -> Vec<S> {
    let half = S::one() / S::from_int(2);
    for d in deltas {
        assert!(
            *d >= half && *d <= S::one(),
            "homogeneous recurrence requires δ ∈ [1/2, 1], got {d:?}"
        );
    }
    let n = deltas.len();
    let mut c = Vec::with_capacity(n);
    if n == 0 {
        return c;
    }
    c.push(S::one() / deltas[0].clone());
    for i in 1..n {
        let c_prev = c[i - 1].clone();
        let c_prev2 = if i >= 2 { c[i - 2].clone() } else { S::zero() };
        // Volume already processed by task i in column i−1:
        // (1 − δ_{i−1})·(C_{i−1} − C_{i−2}).
        let leftover = (S::one() - deltas[i - 1].clone()) * (c_prev.clone() - c_prev2);
        let ci = c_prev + (S::one() - leftover) / deltas[i].clone();
        c.push(ci);
    }
    c
}

/// Total completion time `Σ Cᵢ` of the greedy schedule for `deltas` in
/// schedule order.
pub fn greedy_total_cost<S: Scalar>(deltas: &[S]) -> S {
    greedy_completions(deltas)
        .into_iter()
        .fold(S::zero(), |a, b| a + b)
}

/// Exhaustive best order: minimal `Σ Cᵢ` over all permutations of
/// `deltas`. Returns `(order, cost)` with `order[k]` = index into `deltas`
/// scheduled at position `k`.
///
/// # Panics
/// Panics for `n > 10` (10! ≈ 3.6 M recurrence evaluations is the sane
/// ceiling) and on out-of-range caps.
pub fn best_order_exhaustive<S: Scalar>(deltas: &[S]) -> (Vec<usize>, S) {
    let n = deltas.len();
    assert!(n <= 10, "exhaustive order search capped at n = 10");
    assert!(n >= 1, "need at least one task");
    let mut best: Option<(Vec<usize>, S)> = None;
    for perm in crate::brute::Permutations::new(n) {
        let arranged: Vec<S> = perm.iter().map(|&i| deltas[i].clone()).collect();
        let cost = greedy_total_cost(&arranged);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((perm, cost));
        }
    }
    best.expect("n ≥ 1")
}

/// The paper's necessary condition on optimal 5-task orders: if
/// `i, j, k, l, m` (positions into the δ-sorted-descending list) is
/// optimal, then `(δ_l − δ_j)·(δ_i − δ_m) ≤ 0`.
pub fn five_task_condition<S: Scalar>(deltas_desc: &[S], order: &[usize]) -> bool {
    debug_assert_eq!(deltas_desc.len(), 5);
    debug_assert_eq!(order.len(), 5);
    let d = |pos: usize| deltas_desc[order[pos]].clone();
    // order = (i, j, k, l, m) by position.
    let lhs = (d(3) - d(1)) * (d(0) - d(4));
    lhs <= S::zero()
}

/// The **verified** catalogue of optimal orders for tiny homogeneous
/// instances (δ sorted non-increasing; 0-based positions→indices):
/// `n = 2`: `[0,1]` and `[1,0]`; `n = 3`: `[0,2,1]` and `[1,2,0]`;
/// `n = 4`: `[0,2,3,1]` and `[1,3,2,0]`.
///
/// **Erratum.** The paper prints the 4-task optimal orders as
/// `1,3,2,4` / `4,2,3,1` (1-based). Exhaustive search over 20,000 random
/// δ-draws — cross-checked against both the closed-form recurrence and the
/// general Algorithm-3 simulation — shows the optimum is *always*
/// `1,3,4,2` / `2,4,3,1` and the printed orders are never optimal; the
/// printed pair is one transposition (last two elements) away, strongly
/// suggesting a typo. See [`paper_printed_orders`] and `EXPERIMENTS.md`.
pub fn paper_small_orders(n: usize) -> Vec<Vec<usize>> {
    match n {
        2 => vec![vec![0, 1], vec![1, 0]],
        3 => vec![vec![0, 2, 1], vec![1, 2, 0]],
        4 => vec![vec![0, 2, 3, 1], vec![1, 3, 2, 0]],
        _ => Vec::new(),
    }
}

/// The paper's *printed* n = 4 orders (`1,3,2,4` and `4,2,3,1`, here
/// 0-based) — kept for the erratum check in experiment E7, which shows
/// they are strictly suboptimal on every sampled instance.
pub fn paper_printed_orders(n: usize) -> Vec<Vec<usize>> {
    match n {
        4 => vec![vec![0, 2, 1, 3], vec![3, 1, 2, 0]],
        _ => paper_small_orders(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigratio::Rational;

    #[test]
    fn single_task() {
        let c = greedy_completions(&[0.8f64]);
        assert!((c[0] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn two_tasks_hand_computed() {
        // δ = (0.5, 1.0): C1 = 2; leftover for T2 in col 1 = 0.5·2 = 1 →
        // T2 done at C1 already?? Volume 1 − 1 = 0 → C2 = C1 + 0 = 2.
        let c = greedy_completions(&[0.5f64, 1.0]);
        assert!((c[0] - 2.0).abs() < 1e-12);
        assert!((c[1] - 2.0).abs() < 1e-12);

        // δ = (1.0, 0.5): C1 = 1, leftover = 0 → C2 = 1 + 1/0.5 = 3.
        let c = greedy_completions(&[1.0f64, 0.5]);
        assert!((c[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn recurrence_matches_general_greedy() {
        // Cross-check against the general Algorithm-3 implementation on the
        // equivalent instance.
        use malleable_core::algos::greedy::greedy_schedule;
        use malleable_core::instance::{Instance, TaskId};
        let deltas = [0.9f64, 0.55, 0.7, 0.62, 0.85];
        let rec = greedy_completions(deltas.as_ref());
        let inst = Instance::builder(1.0)
            .tasks(deltas.iter().map(|&d| (1.0, 1.0, d)))
            .build()
            .unwrap();
        let order: Vec<TaskId> = (0..5).map(TaskId).collect();
        let general = greedy_schedule(&inst, &order).unwrap().completion_times();
        for (a, b) in rec.iter().zip(&general) {
            assert!((a - b).abs() < 1e-9, "recurrence {a} vs greedy {b}");
        }
    }

    #[test]
    fn exact_rational_matches_f64() {
        let deltas_f = [0.75f64, 0.5, 0.625];
        let deltas_r: Vec<Rational> = deltas_f
            .iter()
            .map(|&d| Rational::from_f64_exact(d))
            .collect();
        let cf = greedy_total_cost(deltas_f.as_ref());
        let cr = greedy_total_cost(&deltas_r);
        assert!((cf - cr.approx_f64()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires δ ∈ [1/2, 1]")]
    fn rejects_small_caps() {
        let _ = greedy_completions(&[0.4f64]);
    }

    #[test]
    fn best_order_beats_identity() {
        let deltas = vec![0.95f64, 0.5, 0.7];
        let (order, cost) = best_order_exhaustive(&deltas);
        let identity_cost = greedy_total_cost(&deltas);
        assert!(cost <= identity_cost + 1e-12);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn paper_small_orders_are_optimal_for_n2_n3() {
        // δ sorted non-increasing as the paper assumes.
        for deltas in [vec![0.9f64, 0.6], vec![0.8, 0.77]] {
            let (_, best) = best_order_exhaustive(&deltas);
            for order in paper_small_orders(2) {
                let arranged: Vec<f64> = order.iter().map(|&i| deltas[i]).collect();
                let c = greedy_total_cost(&arranged);
                assert!(
                    (c - best).abs() < 1e-9,
                    "paper order {order:?} not optimal: {c} vs {best}"
                );
            }
        }
        for deltas in [vec![0.9f64, 0.7, 0.55], vec![0.99, 0.98, 0.51]] {
            let (_, best) = best_order_exhaustive(&deltas);
            for order in paper_small_orders(3) {
                let arranged: Vec<f64> = order.iter().map(|&i| deltas[i]).collect();
                let c = greedy_total_cost(&arranged);
                assert!(
                    (c - best).abs() < 1e-9,
                    "paper order {order:?} not optimal for {deltas:?}: {c} vs {best}"
                );
            }
        }
    }

    #[test]
    fn five_task_condition_sign() {
        let d: Vec<f64> = vec![0.9, 0.8, 0.7, 0.6, 0.5];
        // Identity order: (δ_l − δ_j)(δ_i − δ_m) = (0.6−0.8)(0.9−0.5) < 0 ✓.
        assert!(five_task_condition(&d, &[0, 1, 2, 3, 4]));
        // Order placing l=j-ish to flip the sign: order (4,3,2,1,0):
        // (δ_{order[3]} − δ_{order[1]})(δ_{order[0]} − δ_{order[4]})
        // = (0.8−0.6)(0.5−0.9) < 0 ✓ (reversal keeps the sign).
        assert!(five_task_condition(&d, &[4, 3, 2, 1, 0]));
        // A violating arrangement: (δ_l−δ_j)(δ_i−δ_m) > 0.
        // order (0,4,2,1,3): (0.8−0.5)(0.9−0.6) > 0 → condition false.
        assert!(!five_task_condition(&d, &[0, 4, 2, 1, 3]));
    }

    #[test]
    fn empty_input() {
        let c: Vec<f64> = greedy_completions::<f64>(&[]);
        assert!(c.is_empty());
    }
}
