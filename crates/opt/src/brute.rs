//! Exhaustive search over completion orders.
//!
//! The global optimum of `MWCT-CB-F` is the minimum over all `n!` orders σ
//! of the Corollary-1 LP value — this is the reference the paper's §V-A
//! experiment compares greedy schedules against ("for each instance the
//! best greedy schedule was numerically indistinguishable from the
//! optimal").
//!
//! Generic over the instance's scalar: on `Instance<Rational>` the minimum
//! over orders is an *exact* optimum (every LP is solved in rational
//! arithmetic and compared exactly).

use crate::lp::{lp_schedule_for_order, OptError};
use malleable_core::algos::greedy::greedy_cost;
use malleable_core::instance::{Instance, TaskId};
use malleable_core::schedule::column::ColumnSchedule;
use numkit::Scalar;

/// Hard cap on exhaustive search size (8! = 40 320 LPs).
pub const MAX_EXHAUSTIVE_N: usize = 8;

/// Iterator over all permutations of `0..n` (Heap's algorithm,
/// lexicographically non-ordered but complete and allocation-light).
pub struct Permutations {
    items: Vec<usize>,
    stack: Vec<usize>,
    i: usize,
    first: bool,
}

impl Permutations {
    /// All permutations of `0..n`.
    pub fn new(n: usize) -> Self {
        Permutations {
            items: (0..n).collect(),
            stack: vec![0; n],
            i: 0,
            first: true,
        }
    }
}

impl Iterator for Permutations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.first {
            self.first = false;
            return Some(self.items.clone());
        }
        let n = self.items.len();
        while self.i < n {
            if self.stack[self.i] < self.i {
                if self.i.is_multiple_of(2) {
                    self.items.swap(0, self.i);
                } else {
                    self.items.swap(self.stack[self.i], self.i);
                }
                self.stack[self.i] += 1;
                self.i = 0;
                return Some(self.items.clone());
            }
            self.stack[self.i] = 0;
            self.i += 1;
        }
        None
    }
}

/// Result of an exhaustive optimum computation.
#[derive(Debug, Clone)]
pub struct OptimalResult<S = f64> {
    /// Optimal objective value.
    pub cost: S,
    /// A completion order achieving it.
    pub order: Vec<TaskId>,
    /// The witnessing schedule.
    pub schedule: ColumnSchedule<S>,
}

/// Exact optimum of `MWCT-CB-F` by LP over every completion order.
///
/// # Errors
/// [`OptError::TooLarge`] beyond [`MAX_EXHAUSTIVE_N`]; LP failures
/// propagate.
pub fn optimal_schedule<S: Scalar>(instance: &Instance<S>) -> Result<OptimalResult<S>, OptError> {
    let n = instance.n();
    if n > MAX_EXHAUSTIVE_N {
        return Err(OptError::TooLarge {
            n,
            max: MAX_EXHAUSTIVE_N,
        });
    }
    let mut best: Option<OptimalResult<S>> = None;
    for perm in Permutations::new(n) {
        let order: Vec<TaskId> = perm.into_iter().map(TaskId).collect();
        let (cost, schedule) = lp_schedule_for_order(instance, &order)?;
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(OptimalResult {
                cost,
                order,
                schedule,
            });
        }
    }
    best.ok_or(OptError::TooLarge { n: 0, max: 0 }) // n = 0 handled below
}

/// Best greedy schedule over **all** `n!` orders.
///
/// # Errors
/// [`OptError::TooLarge`] beyond [`MAX_EXHAUSTIVE_N`]; greedy failures
/// propagate.
pub fn best_greedy_exhaustive<S: Scalar>(
    instance: &Instance<S>,
) -> Result<(S, Vec<TaskId>), OptError> {
    let n = instance.n();
    if n > MAX_EXHAUSTIVE_N {
        return Err(OptError::TooLarge {
            n,
            max: MAX_EXHAUSTIVE_N,
        });
    }
    let mut best: Option<(S, Vec<TaskId>)> = None;
    for perm in Permutations::new(n) {
        let order: Vec<TaskId> = perm.into_iter().map(TaskId).collect();
        let cost = greedy_cost(instance, &order)?;
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, order));
        }
    }
    best.ok_or(OptError::Schedule(
        malleable_core::ScheduleError::InvalidInstance {
            reason: "empty instance".into(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutations_complete_and_distinct() {
        for n in 0..6 {
            let mut all: Vec<Vec<usize>> = Permutations::new(n).collect();
            let expected: usize = (1..=n).product();
            assert_eq!(all.len(), expected.max(1), "n = {n}");
            all.sort();
            all.dedup();
            assert_eq!(all.len(), expected.max(1), "duplicates for n = {n}");
        }
    }

    #[test]
    fn optimum_matches_wspt_on_uniprocessor_instances() {
        // δ = 1, P = 1: the optimum is WSPT with known cost.
        let inst = Instance::builder(1.0)
            .task(1.0, 2.0, 1.0)
            .task(2.0, 1.0, 1.0)
            .task(1.5, 1.5, 1.0)
            .build()
            .unwrap();
        let opt = optimal_schedule(&inst).unwrap();
        opt.schedule.validate(&inst).unwrap();
        // WSPT order: ratios 0.5, 2.0, 1.0 → T0, T2, T1.
        // C = 1, 2.5, 4.5 → cost = 2·1 + 1.5·2.5 + 1·4.5 = 10.25.
        assert!((opt.cost - 10.25).abs() < 1e-6, "got {}", opt.cost);
    }

    #[test]
    fn exact_optimum_matches_wspt_exactly() {
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        let inst = Instance::<Rational>::builder(q(1.0))
            .task(q(1.0), q(2.0), q(1.0))
            .task(q(2.0), q(1.0), q(1.0))
            .task(q(1.5), q(1.5), q(1.0))
            .build()
            .unwrap();
        let opt = optimal_schedule(&inst).unwrap();
        opt.schedule.validate(&inst).unwrap(); // zero tolerance
        assert_eq!(opt.cost, q(10.25)); // exact equality, no epsilon
    }

    #[test]
    fn optimum_lower_than_any_single_order() {
        let inst = Instance::builder(1.0)
            .task(0.4, 0.7, 0.6)
            .task(0.9, 0.3, 0.4)
            .task(0.2, 0.9, 0.8)
            .build()
            .unwrap();
        let opt = optimal_schedule(&inst).unwrap();
        for perm in Permutations::new(3) {
            let order: Vec<TaskId> = perm.into_iter().map(TaskId).collect();
            let (c, _) = lp_schedule_for_order(&inst, &order).unwrap();
            assert!(opt.cost <= c + 1e-7);
        }
    }

    #[test]
    fn too_large_rejected() {
        let inst = Instance::builder(1.0)
            .tasks((0..9).map(|_| (0.1, 1.0, 0.5)))
            .build()
            .unwrap();
        assert!(matches!(
            optimal_schedule(&inst),
            Err(OptError::TooLarge { .. })
        ));
        assert!(matches!(
            best_greedy_exhaustive(&inst),
            Err(OptError::TooLarge { .. })
        ));
    }

    #[test]
    fn best_greedy_no_worse_than_smith_greedy() {
        let inst = Instance::builder(1.0)
            .task(0.4, 0.7, 0.6)
            .task(0.9, 0.3, 0.4)
            .task(0.2, 0.9, 0.8)
            .build()
            .unwrap();
        let (best, _) = best_greedy_exhaustive(&inst).unwrap();
        let smith = malleable_core::algos::orders::smith_order(&inst);
        let smith_cost = greedy_cost(&inst, &smith).unwrap();
        assert!(best <= smith_cost + 1e-9);
    }
}
