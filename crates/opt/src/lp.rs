//! The Corollary-1 linear program.
//!
//! Fix a completion order σ (position `k` hosts task `σ(k)`). With
//! variables `C_k` (ordered completion times) and `x_{k,j}` (area given to
//! the position-`k` task in column `j ≤ k`), the optimal schedule *for that
//! order* solves
//!
//! ```text
//! min  Σ_k w_{σ(k)}·C_k
//! s.t. C_k ≥ C_{k−1}                                   (order)
//!      Σ_{k≥j} x_{k,j} ≤ P·(C_j − C_{j−1})             (column capacity)
//!      x_{k,j} ≤ δ_{σ(k)}·(C_j − C_{j−1})              (per-task cap)
//!      Σ_{j≤k} x_{k,j} = V_{σ(k)}                       (volume)
//!      x, C ≥ 0
//! ```
//!
//! Minimizing over all `n!` orders ([`crate::brute`]) yields the global
//! optimum of `MWCT-CB-F`.
//!
//! The whole pipeline is generic over the scalar field of the *instance*:
//! an `Instance<f64>` is solved in floating point, an
//! `Instance<Rational>` end-to-end in exact arithmetic — the LP
//! coefficients are taken from the instance verbatim, with **no**
//! `f64 → Rational` conversion shim in between, so an exact instance flows
//! from construction through Water-Filling validation to the LP optimum
//! without ever rounding through a float.

use malleable_core::instance::{Instance, TaskId};
use malleable_core::schedule::column::{Column, ColumnSchedule};
use malleable_core::ScheduleError;
use numkit::{Scalar, Tolerance};
use simplex::{LinearProgram, LpError, Relation, SolveOptions};
use std::fmt;

/// Errors from the optimal-schedule machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The LP solver failed (infeasible orders do not exist for valid
    /// instances, so this indicates numeric trouble or a malformed call).
    Lp(LpError),
    /// Schedule/instance-level failure.
    Schedule(ScheduleError),
    /// Instance too large for exhaustive search.
    TooLarge {
        /// Requested size.
        n: usize,
        /// Maximum supported.
        max: usize,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Lp(e) => write!(f, "LP failure: {e}"),
            OptError::Schedule(e) => write!(f, "schedule failure: {e}"),
            OptError::TooLarge { n, max } => {
                write!(f, "instance of size {n} exceeds exhaustive limit {max}")
            }
        }
    }
}

impl std::error::Error for OptError {}

impl From<LpError> for OptError {
    fn from(e: LpError) -> Self {
        OptError::Lp(e)
    }
}

impl From<ScheduleError> for OptError {
    fn from(e: ScheduleError) -> Self {
        OptError::Schedule(e)
    }
}

/// Variable indexing helpers for the Corollary-1 LP.
struct VarMap {
    n: usize,
}

impl VarMap {
    fn c(&self, k: usize) -> usize {
        debug_assert!(k < self.n);
        k
    }
    /// `x_{k,j}`, `j ≤ k` (triangular layout).
    fn x(&self, k: usize, j: usize) -> usize {
        debug_assert!(j <= k && k < self.n);
        self.n + k * (k + 1) / 2 + j
    }
    fn total(&self) -> usize {
        self.n + self.n * (self.n + 1) / 2
    }
}

/// Build the Corollary-1 LP for `order` over the instance's own scalar
/// field (coefficients are used verbatim — no float round-trip).
pub fn build_lp<S: Scalar>(instance: &Instance<S>, order: &[TaskId]) -> LinearProgram<S> {
    let n = instance.n();
    debug_assert!(malleable_core::algos::orders::is_permutation(order, n));
    let vm = VarMap { n };
    let mut lp = LinearProgram::<S>::minimize(vm.total());

    // Objective: Σ w_{σ(k)}·C_k.
    for (k, &tid) in order.iter().enumerate() {
        lp.set_objective(vm.c(k), instance.task(tid).weight.clone());
    }
    // Order: C_k − C_{k−1} ≥ 0.
    for k in 1..n {
        lp.add_constraint(
            vec![(vm.c(k), S::one()), (vm.c(k - 1), -S::one())],
            Relation::Ge,
            S::zero(),
        );
    }
    // Column capacity: Σ_{k≥j} x_{k,j} − P·C_j + P·C_{j−1} ≤ 0.
    let p = instance.p.clone();
    for j in 0..n {
        let mut coeffs: Vec<(usize, S)> = (j..n).map(|k| (vm.x(k, j), S::one())).collect();
        coeffs.push((vm.c(j), -p.clone()));
        if j > 0 {
            coeffs.push((vm.c(j - 1), p.clone()));
        }
        lp.add_constraint(coeffs, Relation::Le, S::zero());
    }
    // Per-task caps: x_{k,j} − δ·C_j + δ·C_{j−1} ≤ 0.
    for (k, &tid) in order.iter().enumerate() {
        let d = instance.effective_delta(tid);
        for j in 0..=k {
            let mut coeffs = vec![(vm.x(k, j), S::one()), (vm.c(j), -d.clone())];
            if j > 0 {
                coeffs.push((vm.c(j - 1), d.clone()));
            }
            lp.add_constraint(coeffs, Relation::Le, S::zero());
        }
    }
    // Volumes: Σ_{j≤k} x_{k,j} = V.
    for (k, &tid) in order.iter().enumerate() {
        let coeffs: Vec<(usize, S)> = (0..=k).map(|j| (vm.x(k, j), S::one())).collect();
        lp.add_constraint(coeffs, Relation::Eq, instance.task(tid).volume.clone());
    }
    lp
}

/// Optimal cost for a fixed completion order, over the instance's scalar
/// field.
///
/// # Errors
/// Propagates solver failures.
pub fn lp_cost_for_order<S: Scalar>(
    instance: &Instance<S>,
    order: &[TaskId],
    opts: &SolveOptions<S>,
) -> Result<S, OptError> {
    instance
        .require_uniform_machine("the Corollary-1 LP")
        .map_err(OptError::Schedule)?;
    if !malleable_core::algos::orders::is_permutation(order, instance.n()) {
        return Err(OptError::Schedule(ScheduleError::InvalidInstance {
            reason: "order is not a permutation".into(),
        }));
    }
    let lp = build_lp::<S>(instance, order);
    Ok(lp.solve_with(opts)?.objective_value)
}

/// Optimal cost *and schedule* for a fixed order, over the instance's
/// scalar field (solver options come from the scalar's natural tolerance:
/// float slack for `f64`, zero for exact fields).
///
/// # Errors
/// Propagates solver failures; the extracted schedule is re-validated by
/// callers as needed.
pub fn lp_schedule_for_order<S: Scalar>(
    instance: &Instance<S>,
    order: &[TaskId],
) -> Result<(S, ColumnSchedule<S>), OptError> {
    instance
        .require_uniform_machine("the Corollary-1 LP")
        .map_err(OptError::Schedule)?;
    if !malleable_core::algos::orders::is_permutation(order, instance.n()) {
        return Err(OptError::Schedule(ScheduleError::InvalidInstance {
            reason: "order is not a permutation".into(),
        }));
    }
    let n = instance.n();
    let vm = VarMap { n };
    let lp = build_lp::<S>(instance, order);
    let sol = lp.solve_with(&SolveOptions::scalar_default())?;

    // Extract columns.
    let mut completions = vec![S::zero(); n];
    let mut columns = Vec::with_capacity(n);
    let mut prev = S::zero();
    let tol = Tolerance::<S>::for_instance(n);
    for j in 0..n {
        let end = sol.x[vm.c(j)].clone().max_of(prev.clone()); // clamp jitter
        let l = end.clone() - prev.clone();
        let mut rates = Vec::new();
        if l > tol.abs {
            for (k, &tid) in order.iter().enumerate().skip(j) {
                let area = sol.x[vm.x(k, j)].clone();
                if area > tol.abs.clone() * l.clone() {
                    rates.push((tid, area / l.clone()));
                }
            }
        }
        columns.push(Column {
            start: prev.clone(),
            end: end.clone(),
            rates,
        });
        completions[order[j].0] = end.clone();
        prev = end;
    }
    // Tasks in zero-length columns complete at the column boundary; make
    // completions consistent with the last positive allocation.
    let cs = ColumnSchedule {
        p: instance.p.clone(),
        completions,
        columns,
    };
    Ok((sol.objective_value, cs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigratio::Rational;
    use malleable_core::algos::orders::smith_order;

    fn tid(v: &[usize]) -> Vec<TaskId> {
        v.iter().map(|&i| TaskId(i)).collect()
    }

    #[test]
    fn single_task_lp_is_tight() {
        // C = V/min(δ,P).
        let inst = Instance::builder(4.0).task(6.0, 2.0, 3.0).build().unwrap();
        let (cost, cs) = lp_schedule_for_order(&inst, &tid(&[0])).unwrap();
        assert!((cost - 4.0).abs() < 1e-7); // w·C = 2·2
        cs.validate(&inst).unwrap();
    }

    #[test]
    fn two_task_lp_matches_hand_solution() {
        // P=1, δ=1 both: single machine WSPT. V=(1,2), w=(2,1).
        // Smith order T0,T1: C0=1, C1=3 → cost 2+3=5 (optimal).
        let inst = Instance::builder(1.0)
            .task(1.0, 2.0, 1.0)
            .task(2.0, 1.0, 1.0)
            .build()
            .unwrap();
        let (cost, cs) = lp_schedule_for_order(&inst, &tid(&[0, 1])).unwrap();
        assert!((cost - 5.0).abs() < 1e-7);
        cs.validate(&inst).unwrap();
        // Reverse order is worse: C1=2, C0=3 → 2 + 6 = 8.
        let (cost_rev, _) = lp_schedule_for_order(&inst, &tid(&[1, 0])).unwrap();
        assert!((cost_rev - 8.0).abs() < 1e-7);
    }

    #[test]
    fn lp_beats_or_matches_greedy_for_same_order() {
        // The LP optimizes over *all* schedules with the given completion
        // order, so it is ≤ greedy for that order.
        let inst = Instance::builder(2.0)
            .task(2.0, 1.0, 2.0)
            .task(2.0, 1.5, 1.0)
            .task(1.0, 0.5, 2.0)
            .build()
            .unwrap();
        let order = smith_order(&inst);
        let greedy = malleable_core::algos::greedy::greedy_cost(&inst, &order).unwrap();
        // NB: greedy's completion order may differ from σ, so compare with
        // the LP for greedy's actual completion order.
        let gs = malleable_core::algos::greedy::greedy_schedule(&inst, &order).unwrap();
        let cs = gs.completion_times();
        let mut by_completion: Vec<TaskId> = (0..3).map(TaskId).collect();
        by_completion.sort_by(|a, b| cs[a.0].total_cmp(&cs[b.0]));
        let (lp_cost, _) = lp_schedule_for_order(&inst, &by_completion).unwrap();
        assert!(lp_cost <= greedy + 1e-7, "lp {lp_cost} > greedy {greedy}");
    }

    #[test]
    fn exact_rational_lp_agrees_with_float() {
        let inst = Instance::builder(1.0)
            .task(0.5, 0.75, 0.5)
            .task(0.25, 0.5, 0.75)
            .build()
            .unwrap();
        let exact: Instance<Rational> = inst.to_scalar();
        let order = tid(&[0, 1]);
        let f = lp_cost_for_order::<f64>(&inst, &order, &SolveOptions::float_default()).unwrap();
        let r = lp_cost_for_order::<Rational>(&exact, &order, &SolveOptions::exact()).unwrap();
        assert!((f - r.approx_f64()).abs() < 1e-7, "f64 {f} vs exact {r}");
    }

    #[test]
    fn exact_lp_schedule_flows_end_to_end() {
        // Instance::<Rational> → LP → ColumnSchedule<Rational>, validated
        // with zero tolerance and cross-checked against Water-Filling on
        // the LP's own completion times — no f64 round-trip anywhere.
        let q = Rational::from_f64_exact;
        let inst = Instance::<Rational>::builder(q(1.0))
            .task(q(0.5), q(0.75), q(0.5))
            .task(q(0.25), q(0.5), q(0.75))
            .build()
            .unwrap();
        let order = tid(&[0, 1]);
        let (cost, cs) = lp_schedule_for_order(&inst, &order).unwrap();
        cs.validate(&inst).unwrap(); // exact Definition-2 check
                                     // The LP's completion times are feasible, exactly (Theorem 8).
        let wf =
            malleable_core::algos::waterfill::water_filling(&inst, cs.completion_times()).unwrap();
        wf.validate(&inst).unwrap();
        assert_eq!(cs.weighted_completion_cost(&inst), cost);
    }

    #[test]
    fn delta_caps_respected_in_lp_schedule() {
        let inst = Instance::builder(4.0)
            .task(2.0, 1.0, 1.0)
            .task(8.0, 1.0, 4.0)
            .build()
            .unwrap();
        for order in [tid(&[0, 1]), tid(&[1, 0])] {
            let (_, cs) = lp_schedule_for_order(&inst, &order).unwrap();
            cs.validate(&inst).unwrap();
        }
    }

    #[test]
    fn rejects_non_permutations() {
        let inst = Instance::builder(1.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .build()
            .unwrap();
        assert!(lp_schedule_for_order(&inst, &tid(&[0, 0])).is_err());
        assert!(
            lp_cost_for_order::<f64>(&inst, &tid(&[0]), &SolveOptions::float_default()).is_err()
        );
    }

    #[test]
    fn tied_optimal_completions_handled() {
        // Two identical tasks: optimal has both finishing together under
        // some orders (zero-length second column).
        let inst = Instance::builder(2.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 1.0, 1.0)
            .build()
            .unwrap();
        let (cost, cs) = lp_schedule_for_order(&inst, &tid(&[0, 1])).unwrap();
        cs.validate(&inst).unwrap();
        assert!((cost - 2.0).abs() < 1e-7);
    }
}
