//! Executable statements of the paper's two conjectures.
//!
//! * **Conjecture 12**: for every instance some greedy schedule is optimal
//!   for `MWCT-CB-F`. [`check_conjecture12`] measures, per instance, the
//!   relative gap between the best greedy schedule (exhaustive over
//!   orders) and the exact LP optimum — the paper ran this on 10,000
//!   uniform instances of sizes 2–5 and found the gap "numerically
//!   indistinguishable" from zero.
//! * **Conjecture 13**: on homogeneous instances (`P = 1, V = w = 1,
//!   δ ∈ [½,1]`) the greedy cost of an order equals the greedy cost of the
//!   *reversed* order. The paper checked it symbolically with Sage up to
//!   `n = 15`. Two exact checkers live here:
//!   [`check_conjecture13_exact`] drives the closed-form §V-B recurrence on
//!   `bigratio::Rational`, and [`check_conjecture13_instance_exact`] drives
//!   the **full generic stack** — `Instance<Rational>` through the general
//!   Algorithm-3 greedy — so the conjecture is verified against the real
//!   scheduler, not just the recurrence. Equality is `==` on rationals in
//!   both; no tolerance is involved anywhere.

use crate::brute::{best_greedy_exhaustive, optimal_schedule};
use crate::homogeneous::greedy_total_cost;
use crate::lp::OptError;
use bigratio::Rational;
use malleable_core::algos::greedy::greedy_schedule;
use malleable_core::instance::{Instance, TaskId};
use numkit::Scalar;

/// Per-instance evidence for Conjecture 12.
#[derive(Debug, Clone)]
pub struct Conj12Report {
    /// Best greedy cost over all orders.
    pub best_greedy: f64,
    /// A greedy order achieving it.
    pub greedy_order: Vec<TaskId>,
    /// Exact optimum (min over orders of the Corollary-1 LP).
    pub optimal: f64,
    /// `best_greedy / optimal − 1` (clamped at 0 for float jitter).
    pub relative_gap: f64,
}

/// Compare the best greedy schedule against the exact optimum.
///
/// # Errors
/// Propagates exhaustive-search errors (`n` too large, LP failures).
pub fn check_conjecture12(instance: &Instance) -> Result<Conj12Report, OptError> {
    let (best_greedy, greedy_order) = best_greedy_exhaustive(instance)?;
    let opt = optimal_schedule(instance)?;
    let relative_gap = if opt.cost > 0.0 {
        (best_greedy / opt.cost - 1.0).max(0.0)
    } else {
        0.0
    };
    Ok(Conj12Report {
        best_greedy,
        greedy_order,
        optimal: opt.cost,
        relative_gap,
    })
}

/// Exact Conjecture-13 check for rational caps `δ = num/den`, via the
/// closed-form §V-B recurrence: `cost(σ) == cost(reverse σ)` where σ is the
/// order given.
///
/// Returns the pair of exact costs along with the verdict so callers can
/// report counterexamples precisely.
pub fn check_conjecture13_exact(deltas: &[(i64, i64)]) -> (bool, Rational, Rational) {
    let fwd: Vec<Rational> = deltas.iter().map(|&(n, d)| Rational::new(n, d)).collect();
    let mut rev = fwd.clone();
    rev.reverse();
    let cf = greedy_total_cost(&fwd);
    let cr = greedy_total_cost(&rev);
    (cf == cr, cf, cr)
}

/// Exact Conjecture-13 check through the **full generic stack**: build the
/// homogeneous `Instance<Rational>` (`P = 1, V = w = 1`) for the caps
/// `δ = num/den`, run the general Algorithm-3 greedy in input order and in
/// reversed order, and compare `Σ Cᵢ` with exact `==`. This is the
/// end-to-end path the genericization over [`numkit::Scalar`] buys: the
/// same `greedy_schedule` code that powers the float experiments produces
/// the certified verdict.
///
/// # Panics
/// Panics if any cap is `≤ 0` (instance validation rejects it). Caps above
/// `P = 1` are *not* rejected — the machine clamps them to 1, which takes
/// the input outside the conjecture's `δ ∈ [½, 1]` hypothesis; callers
/// (like `malleable_workloads::rational_deltas`) are responsible for
/// sampling in range.
pub fn check_conjecture13_instance_exact(deltas: &[(i64, i64)]) -> (bool, Rational, Rational) {
    let one = Rational::from_int(1);
    let make = |ds: &[Rational]| -> Instance<Rational> {
        Instance::new(
            one.clone(),
            ds.iter()
                .map(|d| malleable_core::instance::Task::new(one.clone(), one.clone(), d.clone()))
                .collect(),
        )
        .expect("homogeneous instance is valid")
    };
    let fwd: Vec<Rational> = deltas.iter().map(|&(n, d)| Rational::new(n, d)).collect();
    let mut rev = fwd.clone();
    rev.reverse();
    let order: Vec<TaskId> = (0..deltas.len()).map(TaskId).collect();
    let cost = |ds: &[Rational]| -> Rational {
        let inst = make(ds);
        let s = greedy_schedule(&inst, &order).expect("greedy succeeds on valid instances");
        s.validate(&inst).expect("exact greedy schedule validates");
        Rational::sum(s.completion_times())
    };
    let cf = cost(&fwd);
    let cr = cost(&rev);
    (cf == cr, cf, cr)
}

/// Float Conjecture-13 check: returns `|cost(σ) − cost(reverse σ)|`.
pub fn check_conjecture13_f64(deltas: &[f64]) -> f64 {
    let fwd = deltas.to_vec();
    let mut rev = fwd.clone();
    rev.reverse();
    (greedy_total_cost(&fwd) - greedy_total_cost(&rev)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_workloads::{generate, rational_deltas, Spec};

    #[test]
    fn conjecture12_holds_on_small_fixed_instances() {
        let instances = [
            Instance::builder(1.0)
                .task(0.4, 0.7, 0.6)
                .task(0.9, 0.3, 0.4)
                .build()
                .unwrap(),
            Instance::builder(1.0)
                .task(0.4, 0.7, 0.6)
                .task(0.9, 0.3, 0.4)
                .task(0.2, 0.9, 0.8)
                .build()
                .unwrap(),
        ];
        for inst in instances {
            let rep = check_conjecture12(&inst).unwrap();
            assert!(
                rep.relative_gap < 1e-5,
                "conjecture 12 gap {} on {inst}",
                rep.relative_gap
            );
        }
    }

    #[test]
    fn conjecture12_on_random_paper_instances() {
        // A miniature of the §V-A campaign (the full 10,000×4 sweep lives
        // in the experiment binary).
        for n in 2..=4 {
            for seed in 0..8 {
                let inst = generate(&Spec::PaperUniform { n }, seed);
                let rep = check_conjecture12(&inst).unwrap();
                assert!(
                    rep.relative_gap < 1e-4,
                    "gap {} at n={n} seed={seed}",
                    rep.relative_gap
                );
            }
        }
    }

    #[test]
    fn conjecture13_exact_small() {
        // n = 4, handcrafted rationals.
        let deltas = [(1i64, 2i64), (3, 4), (5, 8), (2, 3)];
        let (ok, cf, cr) = check_conjecture13_exact(&deltas);
        assert!(ok, "forward {cf} ≠ reverse {cr}");
    }

    #[test]
    fn conjecture13_exact_random_batches() {
        for n in [2usize, 5, 9, 12] {
            for seed in 0..4 {
                let deltas = rational_deltas(n, 16, seed);
                let (ok, cf, cr) = check_conjecture13_exact(&deltas);
                assert!(ok, "n={n} seed={seed}: {cf} ≠ {cr} for {deltas:?}");
            }
        }
    }

    #[test]
    fn conjecture13_full_stack_exact_up_to_n8() {
        // The acceptance check of the Scalar genericization: the *general*
        // greedy (not the recurrence) run on Instance<Rational> satisfies
        // the reversal invariance with exact equality, n ≤ 8.
        for n in 2..=8usize {
            for seed in 0..3 {
                let deltas = rational_deltas(n, 12, seed ^ 0xc0ffee);
                let (ok, cf, cr) = check_conjecture13_instance_exact(&deltas);
                assert!(ok, "n={n} seed={seed}: {cf} ≠ {cr} for {deltas:?}");
            }
        }
    }

    #[test]
    fn full_stack_check_agrees_with_recurrence() {
        let deltas = [(1i64, 2i64), (3, 4), (5, 8), (2, 3)];
        let (_, cf_rec, cr_rec) = check_conjecture13_exact(&deltas);
        let (_, cf_gen, cr_gen) = check_conjecture13_instance_exact(&deltas);
        assert_eq!(cf_rec, cf_gen);
        assert_eq!(cr_rec, cr_gen);
    }

    #[test]
    fn conjecture13_f64_consistent() {
        let gap = check_conjecture13_f64(&[0.9, 0.55, 0.71, 0.64]);
        assert!(gap < 1e-12, "float reversal gap {gap}");
    }

    #[test]
    fn conjecture13_does_not_extend_below_half() {
        // The recurrence itself rejects δ < ½ — the conjecture is stated
        // only on the restricted class.
        let r = std::panic::catch_unwind(|| check_conjecture13_f64(&[0.3, 0.9]));
        assert!(r.is_err());
    }
}
