//! # malleable-opt — exact optima and the paper's conjecture checkers
//!
//! * [`lp`] — Corollary 1: *given the order of completion times*, the
//!   optimal malleable schedule is a linear program. The LP is built from
//!   `Instance<S>` coefficients verbatim, so `Instance<f64>` solves in
//!   floating point and `Instance<bigratio::Rational>` end-to-end in exact
//!   arithmetic — no conversion shim between the core and the solver.
//! * [`brute`] — exhaustive minimization over all `n!` completion orders
//!   (the exact optimum for small `n`), and exhaustive best-greedy search.
//! * [`homogeneous`] — Section V-B: the closed-form greedy recurrence on
//!   `P = 1, Vᵢ = wᵢ = 1, δᵢ ≥ ½` instances, generic over the scalar.
//! * [`conjecture`] — executable statements of Conjecture 12 (some greedy
//!   schedule is optimal) and Conjecture 13 (greedy cost is invariant
//!   under order reversal on homogeneous instances), the latter checked in
//!   exact rational arithmetic as the paper did symbolically with Sage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod conjecture;
pub mod homogeneous;
pub mod localsearch;
pub mod lp;

pub use brute::{best_greedy_exhaustive, optimal_schedule, OptimalResult};
pub use conjecture::{check_conjecture12, check_conjecture13_exact, Conj12Report};
pub use localsearch::{local_search_order, smith_plus_local_search, LocalSearchResult};
pub use lp::{lp_cost_for_order, lp_schedule_for_order, OptError};
