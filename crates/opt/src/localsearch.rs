//! Local search over greedy orders — the practical face of Conjecture 12.
//!
//! If (as conjectured, and as every experiment here confirms) some greedy
//! order is optimal, then *searching order space* is a complete algorithm
//! in disguise; exhaustive search dies at n ≈ 8, so production use needs a
//! heuristic walker. This module implements first-improvement local search
//! over pairwise swaps, seeded from Smith's order — on the paper's
//! instance classes it recovers the exhaustive best-greedy cost almost
//! always (tested below), at O(rounds·n²) greedy evaluations instead of
//! n!.

use malleable_core::algos::greedy::greedy_cost;
use malleable_core::algos::orders::smith_order;
use malleable_core::instance::{Instance, TaskId};
use malleable_core::ScheduleError;

/// Outcome of a local search run.
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    /// Best order found.
    pub order: Vec<TaskId>,
    /// Its greedy cost.
    pub cost: f64,
    /// Number of improving swaps applied.
    pub improvements: usize,
    /// `true` iff the search stopped at a local optimum (no improving swap
    /// exists), as opposed to hitting the round cap.
    pub converged: bool,
}

/// First-improvement local search over pairwise swaps, starting from
/// `start`. One *round* scans all `n(n−1)/2` pairs; the search stops when
/// a full round finds no improvement or after `max_rounds`.
///
/// # Errors
/// Propagates greedy failures (malformed instance / order).
pub fn local_search_order(
    instance: &Instance,
    start: &[TaskId],
    max_rounds: usize,
) -> Result<LocalSearchResult, ScheduleError> {
    let mut order = start.to_vec();
    let mut cost = greedy_cost(instance, &order)?;
    let n = order.len();
    let mut improvements = 0usize;
    let mut converged = false;
    let eps = 1e-12;

    for _ in 0..max_rounds {
        let mut improved = false;
        for i in 0..n {
            for j in (i + 1)..n {
                order.swap(i, j);
                let c = greedy_cost(instance, &order)?;
                if c < cost * (1.0 - eps) - eps {
                    cost = c;
                    improved = true;
                    improvements += 1;
                } else {
                    order.swap(i, j); // revert
                }
            }
        }
        if !improved {
            converged = true;
            break;
        }
    }
    Ok(LocalSearchResult {
        order,
        cost,
        improvements,
        converged,
    })
}

/// Convenience: local search from Smith's order (the natural seed — it is
/// already optimal when caps never bind).
///
/// # Errors
/// Propagates greedy failures.
pub fn smith_plus_local_search(
    instance: &Instance,
    max_rounds: usize,
) -> Result<LocalSearchResult, ScheduleError> {
    local_search_order(instance, &smith_order(instance), max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::best_greedy_exhaustive;
    use malleable_workloads::{generate, seed_batch, Spec};

    #[test]
    fn never_worse_than_its_seed() {
        for seed in seed_batch(0x15 + 5, 10) {
            let inst = generate(&Spec::PaperUniform { n: 8 }, seed);
            let seed_cost = greedy_cost(&inst, &smith_order(&inst)).unwrap();
            let r = smith_plus_local_search(&inst, 10).unwrap();
            assert!(r.cost <= seed_cost + 1e-9);
            assert!(r.converged);
        }
    }

    #[test]
    fn recovers_exhaustive_best_greedy_on_small_instances() {
        let mut hits = 0;
        let total = 20;
        for seed in seed_batch(515, total) {
            let inst = generate(&Spec::PaperUniform { n: 5 }, seed);
            let (best, _) = best_greedy_exhaustive(&inst).unwrap();
            let r = smith_plus_local_search(&inst, 10).unwrap();
            assert!(r.cost >= best - 1e-9, "cannot beat the exhaustive best");
            if r.cost <= best * (1.0 + 1e-6) {
                hits += 1;
            }
        }
        // Pairwise swaps reach the global greedy optimum on the vast
        // majority of small uniform instances.
        assert!(hits >= total * 8 / 10, "only {hits}/{total} recovered");
    }

    #[test]
    fn scales_to_sizes_exhaustive_cannot_touch() {
        let inst = generate(&Spec::PaperUniform { n: 40 }, 3);
        let r = smith_plus_local_search(&inst, 3).unwrap();
        assert!(r.cost > 0.0);
        // Must at least match the best structural heuristic.
        let (_, _, heuristic) =
            malleable_core::algos::greedy::best_heuristic_greedy(&inst).unwrap();
        assert!(r.cost <= heuristic + 1e-9);
    }

    #[test]
    fn round_cap_respected() {
        let inst = generate(&Spec::PaperUniform { n: 12 }, 9);
        let r = local_search_order(&inst, &smith_order(&inst), 0).unwrap();
        assert_eq!(r.improvements, 0);
        assert!(!r.converged);
    }
}
