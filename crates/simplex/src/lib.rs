//! Dense two-phase primal simplex, generic over an ordered scalar field.
//!
//! Built from scratch because the offline crate set has no mature LP solver,
//! and the reproduction needs one for Corollary 1 of the paper: *given the
//! order of completion times, the optimal malleable schedule is the solution
//! of a linear program*. The LPs are small (O(n²) variables for n ≤ ~10
//! tasks in the exhaustive experiments), so a dense tableau with **Bland's
//! anti-cycling rule** is the right tool: simple, provably terminating, and
//! — because the solver is generic over [`numkit::Scalar`] — runnable on
//! `bigratio::Rational` for *certified* optima with zero rounding error.
//!
//! # Example
//!
//! ```
//! use simplex::{LinearProgram, Relation};
//!
//! // minimize  x + 2y   s.t.  x + y ≥ 3,  y ≤ 1,  x,y ≥ 0
//! let mut lp = LinearProgram::<f64>::minimize(2);
//! lp.set_objective(0, 1.0);
//! lp.set_objective(1, 2.0);
//! lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
//! lp.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective_value - 3.0).abs() < 1e-9); // x=3, y=0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod solver;
mod tableau;

pub use solver::{LinearProgram, LpError, Objective, Relation, Solution, SolveOptions};
