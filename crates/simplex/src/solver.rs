//! Problem construction and the two-phase driver.

use crate::tableau::{PivotOutcome, Tableau};
use numkit::Scalar;
use std::fmt;

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// Optimization sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the objective function.
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Pivot cap exceeded (possible only through float round-off; exact
    /// scalars terminate by Bland's theorem).
    IterationLimit,
    /// A constraint referenced a variable `>= n_vars`.
    BadVariable {
        /// The offending variable index.
        var: usize,
        /// Number of declared variables.
        n_vars: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::BadVariable { var, n_vars } => {
                write!(f, "variable {var} out of range (n_vars = {n_vars})")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// Value of each structural variable.
    pub x: Vec<S>,
    /// Objective value at `x` (in the problem's own sense).
    pub objective_value: S,
}

/// Solver knobs.
#[derive(Debug, Clone)]
pub struct SolveOptions<S> {
    /// Comparison slack for pivot eligibility and feasibility checks.
    /// Use `S::zero()` with exact scalars.
    pub eps: S,
    /// Pivot cap across both phases.
    pub max_iters: usize,
}

impl SolveOptions<f64> {
    /// Float defaults: `eps = 1e-9`, generous pivot cap.
    pub fn float_default() -> Self {
        SolveOptions {
            eps: 1e-9,
            max_iters: 100_000,
        }
    }
}

impl<S: Scalar> SolveOptions<S> {
    /// Exact defaults: zero slack (for rational scalars).
    pub fn exact() -> Self {
        SolveOptions {
            eps: S::zero(),
            max_iters: 1_000_000,
        }
    }

    /// The scalar's natural options: the float tolerance's absolute slack
    /// for `f64` (≡ [`SolveOptions::float_default`]), zero slack for exact
    /// fields (≡ [`SolveOptions::exact`]). This is what lets callers write
    /// one generic solve path with no per-scalar dispatch.
    pub fn scalar_default() -> Self {
        let tol = S::default_tolerance();
        let exact = tol.is_exact();
        SolveOptions {
            eps: tol.abs,
            max_iters: if exact { 1_000_000 } else { 100_000 },
        }
    }
}

struct Row<S> {
    coeffs: Vec<S>, // dense, length n_vars
    rel: Relation,
    rhs: S,
}

/// A linear program over non-negative variables `x ≥ 0`.
///
/// Variables are indexed `0..n_vars`. Missing objective coefficients are
/// zero; constraints are given sparsely (repeated indices accumulate).
pub struct LinearProgram<S> {
    n_vars: usize,
    sense: Objective,
    objective: Vec<S>,
    rows: Vec<Row<S>>,
}

impl<S: Scalar> LinearProgram<S> {
    /// A minimization problem over `n_vars` non-negative variables.
    pub fn minimize(n_vars: usize) -> Self {
        Self::new(n_vars, Objective::Minimize)
    }

    /// A maximization problem over `n_vars` non-negative variables.
    pub fn maximize(n_vars: usize) -> Self {
        Self::new(n_vars, Objective::Maximize)
    }

    fn new(n_vars: usize, sense: Objective) -> Self {
        LinearProgram {
            n_vars,
            sense,
            objective: vec![S::zero(); n_vars],
            rows: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints added so far.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Set the objective coefficient of `var` (additive on repeat calls).
    ///
    /// # Panics
    /// Panics when `var >= n_vars` (construction-time programming error).
    pub fn set_objective(&mut self, var: usize, coeff: S) {
        assert!(var < self.n_vars, "objective variable out of range");
        self.objective[var] = self.objective[var].clone() + coeff;
    }

    /// Add `Σ coeffs ⋅ x  rel  rhs`. Repeated variable indices accumulate.
    ///
    /// # Panics
    /// Panics when a referenced variable is out of range.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, S)>, rel: Relation, rhs: S) {
        let mut dense = vec![S::zero(); self.n_vars];
        for (v, c) in coeffs {
            assert!(v < self.n_vars, "constraint variable {v} out of range");
            dense[v] = dense[v].clone() + c;
        }
        self.rows.push(Row {
            coeffs: dense,
            rel,
            rhs,
        });
    }

    /// Solve with default options (`1e-9` slack — see
    /// [`SolveOptions::exact`] for rational scalars).
    pub fn solve(&self) -> Result<Solution<S>, LpError> {
        self.solve_with(&SolveOptions {
            eps: S::from_f64(1e-9),
            max_iters: 100_000,
        })
    }

    /// Solve with explicit options.
    pub fn solve_with(&self, opts: &SolveOptions<S>) -> Result<Solution<S>, LpError> {
        let m = self.rows.len();
        let n = self.n_vars;

        // Column layout: structural | one aux per row (slack/surplus or a
        // placeholder artificial) | extra artificials for Ge rows.
        // Every row gets exactly one initially-basic column with +1 coeff.
        let mut n_total = n;
        let mut aux_col = Vec::with_capacity(m); // slack/surplus col per row, if any
        for row in &self.rows {
            match row.rel {
                Relation::Le | Relation::Ge => {
                    aux_col.push(Some(n_total));
                    n_total += 1;
                }
                Relation::Eq => aux_col.push(None),
            }
        }
        let first_artificial = n_total;
        // Decide which rows need artificials: Eq always; Le/Ge depending on
        // rhs sign after normalization.
        // Normalize each row so rhs >= 0, flipping the relation.
        let mut art_of_row = vec![None; m];
        let mut rows_norm: Vec<(Vec<S>, Relation, S)> = Vec::with_capacity(m);
        for (i, row) in self.rows.iter().enumerate() {
            let (coeffs, rel, rhs) = if row.rhs < S::zero() {
                let flipped = match row.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (
                    row.coeffs.iter().map(|c| -c.clone()).collect::<Vec<_>>(),
                    flipped,
                    -row.rhs.clone(),
                )
            } else {
                (row.coeffs.clone(), row.rel, row.rhs.clone())
            };
            // With rhs >= 0: Le rows start basic on their slack; Ge and Eq
            // rows need an artificial.
            if !matches!(rel, Relation::Le) {
                art_of_row[i] = Some(n_total);
                n_total += 1;
            }
            rows_norm.push((coeffs, rel, rhs));
        }

        // Build tableau rows.
        let mut trows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        for (i, (coeffs, rel, rhs)) in rows_norm.iter().enumerate() {
            let mut r = vec![S::zero(); n_total + 1];
            r[..n].clone_from_slice(coeffs);
            // The slack/surplus column index was assigned pre-normalization;
            // its sign depends on the *normalized* relation.
            if let Some(sc) = aux_col[i] {
                r[sc] = match rel {
                    Relation::Le => S::one(),
                    Relation::Ge => -S::one(),
                    Relation::Eq => unreachable!("Eq rows have no aux column"),
                };
            }
            if let Some(ac) = art_of_row[i] {
                r[ac] = S::one();
                basis.push(ac);
            } else {
                basis.push(aux_col[i].expect("Le row has a slack"));
            }
            r[n_total] = rhs.clone();
            trows.push(r);
        }

        let mut t = Tableau {
            rows: trows,
            cost: vec![S::zero(); n_total + 1],
            basis,
            banned: vec![false; n_total],
            eps: opts.eps.clone(),
        };

        // ------------------------- Phase 1 -------------------------
        if first_artificial < n_total {
            let mut c1 = vec![S::zero(); n_total];
            for c in c1.iter_mut().skip(first_artificial) {
                *c = S::one();
            }
            t.set_objective(&c1);
            match t.run(opts.max_iters) {
                PivotOutcome::Optimal => {}
                PivotOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by 0; unbounded here
                    // means numerical trouble.
                    return Err(LpError::IterationLimit);
                }
                PivotOutcome::IterationLimit => return Err(LpError::IterationLimit),
            }
            if t.objective_value() > opts.eps.clone() + opts.eps.clone() {
                return Err(LpError::Infeasible);
            }
            // Drive any artificial still basic (at zero) out of the basis.
            for i in 0..m {
                if t.basis[i] < first_artificial {
                    continue;
                }
                let piv = (0..first_artificial).find(|&j| t.rows[i][j].clone().abs() > opts.eps);
                if let Some(j) = piv {
                    t.pivot(i, j);
                }
                // else: redundant row; the artificial stays basic at zero
                // and is banned below, so it can never leave zero.
            }
            for b in t.banned.iter_mut().skip(first_artificial) {
                *b = true;
            }
        }

        // ------------------------- Phase 2 -------------------------
        let mut c2 = vec![S::zero(); n_total];
        for (j, c) in self.objective.iter().enumerate() {
            c2[j] = match self.sense {
                Objective::Minimize => c.clone(),
                Objective::Maximize => -c.clone(),
            };
        }
        t.set_objective(&c2);
        match t.run(opts.max_iters) {
            PivotOutcome::Optimal => {}
            PivotOutcome::Unbounded => return Err(LpError::Unbounded),
            PivotOutcome::IterationLimit => return Err(LpError::IterationLimit),
        }

        let x: Vec<S> = (0..n).map(|j| t.var_value(j)).collect();
        let v = t.objective_value();
        let objective_value = match self.sense {
            Objective::Minimize => v,
            Objective::Maximize => -v,
        };
        Ok(Solution { x, objective_value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigratio::Rational;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn basic_minimize() {
        // min x + 2y, x + y >= 3, y <= 1 → x=3,y=0 (cheaper than using y).
        let mut lp = LinearProgram::<f64>::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
        lp.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective_value, 3.0);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 0.0);
    }

    #[test]
    fn basic_maximize() {
        // max 3x + 2y, x + y <= 4, x <= 2 → (2,2), value 10.
        let mut lp = LinearProgram::<f64>::maximize(2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective_value, 10.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y, x + 2y = 4, x − y = 1 → x=2, y=1.
        let mut lp = LinearProgram::<f64>::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], Relation::Eq, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Eq, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 1.0);
        assert_close(s.objective_value, 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::<f64>::minimize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::<f64>::maximize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, -1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x >= 2 written as −x <= −2.
        let mut lp = LinearProgram::<f64>::minimize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, -1.0)], Relation::Le, -2.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn redundant_equalities() {
        // Same equality twice: the second row's artificial cannot be driven
        // out; it must stay banned at zero without corrupting phase 2.
        let mut lp = LinearProgram::<f64>::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 3.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Relation::Eq, 4.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective_value, 2.0); // x=2, y=0
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic Beale cycling example; Bland's rule must terminate.
        let mut lp = LinearProgram::<f64>::minimize(4);
        for (i, c) in [-0.75, 150.0, -0.02, 6.0].into_iter().enumerate() {
            lp.set_objective(i, c);
        }
        lp.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -1.0 / 25.0), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -1.0 / 50.0), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(vec![(2, 1.0)], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective_value, -0.05);
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let mut lp = LinearProgram::<f64>::minimize(2);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective_value, 0.0);
        assert_close(s.x[0] + s.x[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_variable_panics() {
        let mut lp = LinearProgram::<f64>::minimize(1);
        lp.add_constraint(vec![(3, 1.0)], Relation::Le, 1.0);
    }

    #[test]
    fn exact_rational_solve() {
        // min x + 2y, x + y >= 1/3, x <= 1/7 → y = 1/3 − 1/7 = 4/21.
        let r = |n, d| Rational::new(n, d);
        let mut lp = LinearProgram::<Rational>::minimize(2);
        lp.set_objective(0, r(1, 1));
        lp.set_objective(1, r(2, 1));
        lp.add_constraint(vec![(0, r(1, 1)), (1, r(1, 1))], Relation::Ge, r(1, 3));
        lp.add_constraint(vec![(0, r(1, 1))], Relation::Le, r(1, 7));
        let s = lp.solve_with(&SolveOptions::exact()).unwrap();
        assert_eq!(s.x[0], r(1, 7));
        assert_eq!(s.x[1], r(4, 21));
        assert_eq!(s.objective_value, r(1, 7) + r(8, 21));
    }

    #[test]
    fn float_and_exact_agree() {
        // Random-ish fixed LP solved both ways.
        let coeffs: [(f64, f64, f64); 3] = [(2.0, 1.0, 8.0), (1.0, 3.0, 9.0), (1.0, 1.0, 4.0)];
        let mut lpf = LinearProgram::<f64>::maximize(2);
        lpf.set_objective(0, 5.0);
        lpf.set_objective(1, 4.0);
        let mut lpr = LinearProgram::<Rational>::maximize(2);
        lpr.set_objective(0, Rational::from_int(5));
        lpr.set_objective(1, Rational::from_int(4));
        for (a, b, rhs) in coeffs {
            lpf.add_constraint(vec![(0, a), (1, b)], Relation::Le, rhs);
            lpr.add_constraint(
                vec![
                    (0, Rational::from_f64_exact(a)),
                    (1, Rational::from_f64_exact(b)),
                ],
                Relation::Le,
                Rational::from_f64_exact(rhs),
            );
        }
        let sf = lpf.solve().unwrap();
        let sr = lpr.solve_with(&SolveOptions::exact()).unwrap();
        assert_close(sf.objective_value, sr.objective_value.approx_f64());
    }
}
