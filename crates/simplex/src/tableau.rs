//! The dense simplex tableau and the Bland-rule pivot loop.
//!
//! The tableau holds `m` constraint rows in basis form `[B⁻¹A | B⁻¹b]` plus
//! a reduced-cost row. Entering/leaving choices follow Bland's rule
//! (smallest eligible index), which guarantees finite termination even on
//! degenerate LPs — exactly the regime the Corollary-1 scheduling LPs live
//! in (zero-length columns make them heavily degenerate).

use numkit::Scalar;

/// Outcome of running the pivot loop to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotOutcome {
    /// No entering column: current basis is optimal.
    Optimal,
    /// An entering column had no positive row: the LP is unbounded below.
    Unbounded,
    /// The iteration cap was hit (only plausible with float round-off).
    IterationLimit,
}

/// Dense tableau. Column layout: structural and auxiliary variables
/// `0..n_total`, then the right-hand side as the last column.
pub struct Tableau<S> {
    /// `m` rows, each of length `n_total + 1` (rhs last).
    pub rows: Vec<Vec<S>>,
    /// Reduced-cost row, length `n_total + 1`; the last entry holds the
    /// *negated* current objective value.
    pub cost: Vec<S>,
    /// `basis[i]` = variable index basic in row `i`.
    pub basis: Vec<usize>,
    /// Columns that may never enter the basis (retired artificials).
    pub banned: Vec<bool>,
    /// Comparison slack: a value `x` is "negative" when `x < −eps`.
    pub eps: S,
}

impl<S: Scalar> Tableau<S> {
    /// Number of columns excluding the rhs.
    pub fn n_cols(&self) -> usize {
        self.cost.len() - 1
    }

    /// Right-hand side of row `i` (current value of its basic variable).
    pub fn rhs(&self, i: usize) -> &S {
        let n = self.rows[i].len() - 1;
        &self.rows[i][n]
    }

    /// Install the objective `c` (length `n_total`): computes reduced costs
    /// `r_j = c_j − c_B·B⁻¹A_j` and the objective value for the current
    /// basis. Banned columns keep a zero reduced cost and can never enter.
    #[allow(clippy::needless_range_loop)] // parallel-array numeric kernel
    pub fn set_objective(&mut self, c: &[S]) {
        let n = self.n_cols();
        debug_assert_eq!(c.len(), n);
        let mut cost = Vec::with_capacity(n + 1);
        cost.extend(c.iter().cloned());
        cost.push(S::zero()); // −objective value accumulator
        for (i, &bi) in self.basis.iter().enumerate() {
            let cb = c[bi].clone();
            if cb.is_zero() {
                continue;
            }
            for j in 0..=n {
                cost[j] = cost[j].clone() - cb.clone() * self.rows[i][j].clone();
            }
        }
        self.cost = cost;
    }

    /// Current objective value (the stored rhs entry is its negation).
    pub fn objective_value(&self) -> S {
        let n = self.n_cols();
        -self.cost[n].clone()
    }

    /// Value of variable `j` in the current basic solution.
    pub fn var_value(&self, j: usize) -> S {
        for (i, &bi) in self.basis.iter().enumerate() {
            if bi == j {
                return self.rhs(i).clone();
            }
        }
        S::zero()
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    pub fn pivot(&mut self, row: usize, col: usize) {
        let n = self.n_cols();
        let piv = self.rows[row][col].clone();
        debug_assert!(!piv.is_zero(), "pivot on zero element");
        for j in 0..=n {
            self.rows[row][j] = self.rows[row][j].clone() / piv.clone();
        }
        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let factor = self.rows[i][col].clone();
            if factor.is_zero() {
                continue;
            }
            for j in 0..=n {
                self.rows[i][j] =
                    self.rows[i][j].clone() - factor.clone() * self.rows[row][j].clone();
            }
        }
        let factor = self.cost[col].clone();
        if !factor.is_zero() {
            for j in 0..=n {
                self.cost[j] = self.cost[j].clone() - factor.clone() * self.rows[row][j].clone();
            }
        }
        self.basis[row] = col;
    }

    /// Bland's rule: smallest non-banned column with reduced cost `< −eps`.
    fn entering_column(&self) -> Option<usize> {
        let neg = -self.eps.clone();
        (0..self.n_cols()).find(|&j| !self.banned[j] && self.cost[j] < neg)
    }

    /// Ratio test for `col`: smallest `rhs_i / a_{i,col}` over rows with
    /// `a_{i,col} > eps`, ties broken by the smallest basic-variable index
    /// (the second half of Bland's rule).
    fn leaving_row(&self, col: usize) -> Option<usize> {
        let mut best: Option<(S, usize)> = None; // (ratio, row)
        for i in 0..self.rows.len() {
            let a = &self.rows[i][col];
            if *a <= self.eps {
                continue;
            }
            let ratio = self.rhs(i).clone() / a.clone();
            match &best {
                None => best = Some((ratio, i)),
                Some((r, bi)) => {
                    if ratio < *r || (ratio == *r && self.basis[i] < self.basis[*bi]) {
                        best = Some((ratio, i));
                    }
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// Run pivots until optimal / unbounded / iteration cap.
    pub fn run(&mut self, max_iters: usize) -> PivotOutcome {
        for _ in 0..max_iters {
            let Some(col) = self.entering_column() else {
                return PivotOutcome::Optimal;
            };
            let Some(row) = self.leaving_row(col) else {
                return PivotOutcome::Unbounded;
            };
            self.pivot(row, col);
        }
        PivotOutcome::IterationLimit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// minimize −x−y s.t. x+y ≤ 2, x ≤ 1 (slacks at columns 2,3).
    fn toy() -> Tableau<f64> {
        Tableau {
            rows: vec![vec![1.0, 1.0, 1.0, 0.0, 2.0], vec![1.0, 0.0, 0.0, 1.0, 1.0]],
            cost: vec![0.0; 5],
            basis: vec![2, 3],
            banned: vec![false; 4],
            eps: 1e-9,
        }
    }

    #[test]
    fn pivot_loop_reaches_optimum() {
        let mut t = toy();
        t.set_objective(&[-1.0, -1.0, 0.0, 0.0]);
        assert_eq!(t.run(100), PivotOutcome::Optimal);
        assert!((t.objective_value() + 2.0).abs() < 1e-9);
        // x + y == 2 at the optimum.
        assert!((t.var_value(0) + t.var_value(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unbounded_detected() {
        // minimize −x with only x − y ≤ 1: x can grow with y.
        let mut t = Tableau {
            rows: vec![vec![1.0, -1.0, 1.0, 1.0]],
            cost: vec![0.0; 4],
            basis: vec![2],
            banned: vec![false; 3],
            eps: 1e-9,
        };
        t.set_objective(&[-1.0, 0.0, 0.0]);
        // First pivot brings x in; then y's column is all ≤ 0 ⇒ unbounded.
        assert_eq!(t.run(100), PivotOutcome::Unbounded);
    }

    #[test]
    fn objective_recomputed_for_nontrivial_basis() {
        let mut t = toy();
        t.set_objective(&[-1.0, -1.0, 0.0, 0.0]);
        t.run(100);
        // Re-installing a new objective on the final basis must account for
        // basic structural variables.
        t.set_objective(&[1.0, 0.0, 0.0, 0.0]);
        assert!((t.objective_value() - t.var_value(0)).abs() < 1e-9);
    }
}
