//! Randomized verification of the simplex solver.
//!
//! Strategy: generate LPs that are feasible and bounded **by
//! construction**, solve them in `f64` and in exact rationals, and check
//! (a) both agree, (b) the reported point is feasible, (c) no sampled
//! feasible point beats the reported optimum.

use bigratio::Rational;
use proptest::prelude::*;
use simplex::{LinearProgram, LpError, Relation, SolveOptions};

/// A random covering LP: minimize c·x, A x ≥ b, x ≥ 0 with A, b, c > 0 —
/// always feasible (scale x up) and bounded (c > 0, x ≥ 0).
#[derive(Debug, Clone)]
struct CoveringLp {
    n: usize,
    c: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn covering_lp() -> impl Strategy<Value = CoveringLp> {
    (1usize..=4, 1usize..=4).prop_flat_map(|(n, m)| {
        let c = proptest::collection::vec(0.1f64..4.0, n..=n);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(0.1f64..4.0, n..=n), 0.5f64..4.0),
            m..=m,
        );
        (c, rows).prop_map(move |(c, rows)| CoveringLp { n, c, rows })
    })
}

fn build_f64(lp: &CoveringLp) -> LinearProgram<f64> {
    let mut out = LinearProgram::<f64>::minimize(lp.n);
    for (j, &c) in lp.c.iter().enumerate() {
        out.set_objective(j, c);
    }
    for (coeffs, rhs) in &lp.rows {
        out.add_constraint(
            coeffs.iter().copied().enumerate().collect(),
            Relation::Ge,
            *rhs,
        );
    }
    out
}

fn build_exact(lp: &CoveringLp) -> LinearProgram<Rational> {
    let q = Rational::from_f64_exact;
    let mut out = LinearProgram::<Rational>::minimize(lp.n);
    for (j, &c) in lp.c.iter().enumerate() {
        out.set_objective(j, q(c));
    }
    for (coeffs, rhs) in &lp.rows {
        out.add_constraint(
            coeffs.iter().map(|&v| q(v)).enumerate().collect(),
            Relation::Ge,
            q(*rhs),
        );
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn float_solution_is_feasible_and_matches_exact(lp in covering_lp()) {
        let sol = build_f64(&lp).solve().expect("covering LPs are solvable");
        // Feasibility of the reported point.
        for (coeffs, rhs) in &lp.rows {
            let lhs: f64 = coeffs.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
            prop_assert!(lhs >= rhs - 1e-6, "constraint violated: {lhs} < {rhs}");
        }
        for &x in &sol.x {
            prop_assert!(x >= -1e-9);
        }
        // Agreement with the exact solver.
        let exact = build_exact(&lp)
            .solve_with(&SolveOptions::exact())
            .expect("exact solve");
        let ev = exact.objective_value.approx_f64();
        prop_assert!(
            (sol.objective_value - ev).abs() <= 1e-6 * (1.0 + ev.abs()),
            "float {} vs exact {}",
            sol.objective_value,
            ev
        );
    }

    #[test]
    fn no_sampled_feasible_point_beats_the_optimum(
        lp in covering_lp(),
        scale in 1.0f64..5.0
    ) {
        let sol = build_f64(&lp).solve().expect("solvable");
        // A crude feasible point: x_j = scale · max_i (b_i / a_ij) — large
        // enough to cover every row on its own coordinate.
        let mut x = vec![0.0f64; lp.n];
        for (coeffs, rhs) in &lp.rows {
            for (j, &a) in coeffs.iter().enumerate() {
                x[j] = x[j].max(scale * rhs / (a * lp.n as f64).max(1e-9));
            }
        }
        // Make sure it actually covers (it does: Σ_j a_ij·x_j ≥ b_i by the
        // per-coordinate construction), then compare objectives.
        let feasible = lp.rows.iter().all(|(coeffs, rhs)| {
            coeffs.iter().zip(&x).map(|(a, x)| a * x).sum::<f64>() >= rhs - 1e-9
        });
        prop_assume!(feasible);
        let obj: f64 = lp.c.iter().zip(&x).map(|(c, x)| c * x).sum();
        prop_assert!(sol.objective_value <= obj + 1e-6 * (1.0 + obj.abs()));
    }

    #[test]
    fn unbounded_and_infeasible_classified(direction in 0usize..2) {
        if direction == 0 {
            // max x, x ≥ 1 only — unbounded above.
            let mut lp = LinearProgram::<f64>::maximize(1);
            lp.set_objective(0, 1.0);
            lp.add_constraint(vec![(0, 1.0)], Relation::Ge, 1.0);
            prop_assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
        } else {
            // x ≤ 0 ∧ x ≥ 1 — infeasible.
            let mut lp = LinearProgram::<f64>::minimize(1);
            lp.add_constraint(vec![(0, 1.0)], Relation::Le, 0.0);
            lp.add_constraint(vec![(0, 1.0)], Relation::Ge, 1.0);
            prop_assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
        }
    }
}
