//! **Self-contained text flamegraph / top-k-spans summary.**
//!
//! The second exporter: no browser required. Aggregates spans by their
//! full call path (`solve.lmax;probe.solve;flow.solve`), renders the
//! inclusive-time tree, the top-k span names by inclusive/self time, and
//! the unified counter/gauge registry totals.

use crate::{Event, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Default, Clone)]
struct PathAgg {
    count: u64,
    incl_ns: u64,
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Aggregate spans by call path: map from `;`-joined path to
/// `(count, inclusive_ns)`. Paths are per-thread; identical paths on
/// different threads merge (the flamegraph is a work profile, not a
/// timeline — the Chrome exporter keeps the per-thread view).
fn aggregate(trace: &Trace) -> BTreeMap<String, PathAgg> {
    let mut paths: BTreeMap<String, PathAgg> = BTreeMap::new();
    for (_tid, events) in trace.events_per_thread() {
        let mut stack: Vec<(&'static str, u64)> = Vec::new();
        for ev in events {
            match ev {
                Event::Begin { name, ts, .. } => stack.push((name, *ts)),
                Event::End { name, ts, .. } => {
                    if let Some((open, t0)) = stack.pop() {
                        debug_assert_eq!(open, *name);
                        let mut path = String::new();
                        for (frame, _) in &stack {
                            path.push_str(frame);
                            path.push(';');
                        }
                        path.push_str(name);
                        let agg = paths.entry(path).or_default();
                        agg.count += 1;
                        agg.incl_ns += ts.saturating_sub(t0);
                    }
                }
                _ => {}
            }
        }
    }
    paths
}

/// Render the text summary: span tree with inclusive times, top-k span
/// names by inclusive time (with self time), and the counter/gauge
/// registry. Deterministic given the trace.
pub fn render_summary(trace: &Trace, top_k: usize) -> String {
    let paths = aggregate(trace);
    let mut out = String::new();

    let total_spans: u64 = paths.values().map(|a| a.count).sum();
    let wall_ns = {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for (_tid, events) in trace.events_per_thread() {
            for ev in events {
                lo = lo.min(ev.ts());
                hi = hi.max(ev.ts());
            }
        }
        hi.saturating_sub(if lo == u64::MAX { 0 } else { lo })
    };
    let _ = writeln!(
        out,
        "trace summary: {} events, {} spans, {} threads, span {} ms",
        trace.len(),
        total_spans,
        trace.events_per_thread().len(),
        ms(wall_ns),
    );

    // Span tree. BTreeMap order sorts children directly after their
    // parent prefix, so indentation by path depth renders the tree.
    if !paths.is_empty() {
        let _ = writeln!(out, "\nspan tree (inclusive ms · calls):");
        for (path, agg) in &paths {
            let depth = path.matches(';').count();
            let name = path.rsplit(';').next().unwrap_or(path);
            let _ = writeln!(
                out,
                "  {}{name}  {} ms · {}",
                "  ".repeat(depth),
                ms(agg.incl_ns),
                agg.count,
            );
        }
    }

    // Top-k by span name: inclusive and self time aggregated across paths.
    let mut incl_by_name: BTreeMap<&str, PathAgg> = BTreeMap::new();
    let mut self_by_name: BTreeMap<&str, u64> = BTreeMap::new();
    for (path, agg) in &paths {
        let name = path.rsplit(';').next().unwrap_or(path);
        let slot = incl_by_name.entry(name).or_default();
        slot.count += agg.count;
        slot.incl_ns += agg.incl_ns;
        // Self time: inclusive minus the inclusive time of direct children.
        let child_prefix = format!("{path};");
        let children_ns: u64 = paths
            .range(child_prefix.clone()..)
            .take_while(|(p, _)| p.starts_with(&child_prefix))
            .filter(|(p, _)| !p[child_prefix.len()..].contains(';'))
            .map(|(_, a)| a.incl_ns)
            .sum();
        *self_by_name.entry(name).or_default() += agg.incl_ns.saturating_sub(children_ns);
    }
    if !incl_by_name.is_empty() {
        let mut ranked: Vec<(&str, PathAgg)> =
            incl_by_name.iter().map(|(k, v)| (*k, v.clone())).collect();
        ranked.sort_by(|a, b| b.1.incl_ns.cmp(&a.1.incl_ns).then(a.0.cmp(b.0)));
        let _ = writeln!(out, "\ntop spans (incl ms · self ms · calls):");
        for (name, agg) in ranked.into_iter().take(top_k) {
            let _ = writeln!(
                out,
                "  {name:<24} {:>10} {:>10} {:>8}",
                ms(agg.incl_ns),
                ms(*self_by_name.get(name).unwrap_or(&0)),
                agg.count,
            );
        }
    }

    let counters = trace.counter_totals();
    if !counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, total) in counters {
            let _ = writeln!(out, "  {name:<24} {total:>12}");
        }
    }
    let gauges = trace.gauge_finals();
    if !gauges.is_empty() {
        let _ = writeln!(out, "\ngauges (final):");
        for (name, value) in gauges {
            let _ = writeln!(out, "  {name:<24} {value:>12}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, gauge, span, Session};

    #[test]
    fn summary_renders_tree_and_registry() {
        let session = Session::start();
        for _ in 0..3 {
            let _outer = span("solve.lmax");
            {
                let _inner = span("probe.solve");
                counter("flow.phases", 2);
            }
        }
        gauge("batch.cells", 9);
        let trace = session.finish();
        let text = render_summary(&trace, 10);
        assert!(text.contains("span tree"));
        assert!(text.contains("solve.lmax"));
        assert!(text.contains("probe.solve"));
        assert!(text.contains("flow.phases"));
        assert!(text.contains("6"), "counter total 6 expected:\n{text}");
        assert!(text.contains("batch.cells"));
        // The nested span appears indented under its parent.
        let tree_line = text
            .lines()
            .find(|l| l.contains("probe.solve") && l.contains("ms"))
            .expect("tree line");
        assert!(tree_line.starts_with("    "), "nested span is indented");
    }

    #[test]
    fn empty_trace_summary_is_harmless() {
        let session = Session::start();
        let trace = session.finish();
        let text = render_summary(&trace, 5);
        assert!(text.contains("0 events"));
    }
}
