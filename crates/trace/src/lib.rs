//! **Structured tracing + unified metrics for the malleable-task stack.**
//!
//! A thread-local, span-based recorder with no external dependencies:
//!
//! - **Hierarchical timed spans** (`solve.lmax → probe.solve → flow.solve →
//!   flow.dinic_phase`) recorded as compact begin/end events with monotonic
//!   nanosecond timestamps from a process-wide [`Instant`] anchor.
//! - **A counter/gauge registry** that unifies the solver telemetry structs
//!   (`FlowStats`, `ProbeTelemetry`, the WDEQ/segment-tree event counters)
//!   behind one API — see [`MetricSet`].
//! - **Two exporters**: Chrome trace-event JSON ([`chrome::to_chrome_json`],
//!   loadable in Perfetto / `about:tracing`) and a self-contained text
//!   flamegraph / top-k-spans summary ([`flame::render_summary`]).
//! - **Zero-cost disabled mode**: when no [`Session`] is active every probe
//!   (`span`, `counter`, `gauge`) is a thread-local boolean check — no
//!   allocation, no timestamp read, and no atomics on the hot path (the one
//!   atomic load happens when a thread's buffer is first initialised).
//!
//! # Threading model
//!
//! Each thread records into its own buffer; buffers are merged into the
//! session trace when a thread exits (TLS destructor), when
//! [`flush_thread`] is called explicitly, or at [`Session::finish`] for the
//! calling thread. This matches the batch engine's executor, which spawns
//! fresh scoped threads per grid: worker buffers are flushed per cell and
//! drained before the scope returns, so `finish()` observes a complete,
//! merged trace with no torn spans.
//!
//! Only one session can be active at a time; [`Session::start`] serialises
//! on a global lock (concurrent tests queue instead of interleaving).
//! Threads that initialised their buffer while tracing was disabled stay
//! disabled for their lifetime — start the session before spawning workers.
//!
//! ```
//! let session = malleable_trace::Session::start();
//! {
//!     let mut sp = malleable_trace::span("solve.lmax");
//!     sp.arg("n", 42);
//!     malleable_trace::counter("flow.phases", 3);
//! }
//! let trace = session.finish();
//! assert_eq!(trace.validate().unwrap().spans, 1);
//! let json = malleable_trace::chrome::to_chrome_json(&trace);
//! malleable_trace::chrome::validate_chrome_json(&json).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod flame;
pub mod metrics;

pub use metrics::MetricSet;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// One recorded event. Span begin/end pairs carry a static name (low
/// cardinality, used for aggregation); begins may add a dynamic label and
/// ends may add numeric args (per-span counters).
#[derive(Debug, Clone)]
pub enum Event {
    /// Span opened (`ph:"B"` in Chrome trace terms).
    Begin {
        /// Static span name, e.g. `"flow.solve"`.
        name: &'static str,
        /// Nanoseconds since the session anchor.
        ts: u64,
        /// Optional dynamic label (e.g. a workload family), emitted as a
        /// string arg — kept out of `name` so aggregation stays low-cardinality.
        label: Option<Box<str>>,
    },
    /// Span closed (`ph:"E"`), with any args attached via [`Span::arg`].
    End {
        /// Static span name (must match the open span).
        name: &'static str,
        /// Nanoseconds since the session anchor.
        ts: u64,
        /// Numeric args attached while the span was open.
        args: Vec<(&'static str, u64)>,
    },
    /// Monotone counter increment (`ph:"C"`, exported as running totals).
    Counter {
        /// Registry counter name, e.g. `"wdeq.events"`.
        name: &'static str,
        /// Nanoseconds since the session anchor.
        ts: u64,
        /// Increment (counters are monotone; deltas sum into totals).
        delta: u64,
    },
    /// Point-in-time gauge sample (last value wins in summaries).
    Gauge {
        /// Registry gauge name, e.g. `"batch.cells"`.
        name: &'static str,
        /// Nanoseconds since the session anchor.
        ts: u64,
        /// Sampled value.
        value: u64,
    },
}

impl Event {
    /// Timestamp in nanoseconds since the session anchor.
    pub fn ts(&self) -> u64 {
        match *self {
            Event::Begin { ts, .. }
            | Event::End { ts, .. }
            | Event::Counter { ts, .. }
            | Event::Gauge { ts, .. } => ts,
        }
    }
}

/// A contiguous run of events recorded by one thread. A thread may
/// contribute several chunks (one per explicit flush); chunks from the same
/// `tid` are in chronological order.
#[derive(Debug)]
pub struct ThreadChunk {
    /// Session-unique thread id (dense, assigned at first recording).
    pub tid: u64,
    /// Events in recording order.
    pub events: Vec<Event>,
}

/// Structural statistics returned by [`Trace::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events across all threads.
    pub events: usize,
    /// Completed spans (begin/end pairs).
    pub spans: usize,
    /// Deepest nesting observed on any thread.
    pub max_depth: usize,
    /// Distinct thread ids.
    pub threads: usize,
    /// Counter increment events.
    pub counters: usize,
}

/// The merged output of a tracing [`Session`].
#[derive(Debug, Default)]
pub struct Trace {
    /// Per-thread event chunks in flush order.
    pub chunks: Vec<ThreadChunk>,
}

impl Trace {
    /// Events grouped by thread id, preserving per-thread recording order.
    pub fn events_per_thread(&self) -> BTreeMap<u64, Vec<&Event>> {
        let mut map: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
        for chunk in &self.chunks {
            map.entry(chunk.tid)
                .or_default()
                .extend(chunk.events.iter());
        }
        map
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.events.len()).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unified counter registry: sums of all [`Event::Counter`] deltas.
    pub fn counter_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for chunk in &self.chunks {
            for ev in &chunk.events {
                if let Event::Counter { name, delta, .. } = ev {
                    *totals.entry(name).or_insert(0) += delta;
                }
            }
        }
        totals
    }

    /// Final gauge values (latest sample per name across all threads).
    pub fn gauge_finals(&self) -> BTreeMap<&'static str, u64> {
        let mut latest: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for chunk in &self.chunks {
            for ev in &chunk.events {
                if let Event::Gauge { name, ts, value } = *ev {
                    let slot = latest.entry(name).or_insert((ts, value));
                    if ts >= slot.0 {
                        *slot = (ts, value);
                    }
                }
            }
        }
        latest.into_iter().map(|(k, (_, v))| (k, v)).collect()
    }

    /// Distinct span names present in the trace (the instrumented layers).
    pub fn span_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for chunk in &self.chunks {
            for ev in &chunk.events {
                if let Event::Begin { name, .. } = ev {
                    if !names.contains(name) {
                        names.push(name);
                    }
                }
            }
        }
        names.sort_unstable();
        names
    }

    /// Structural validation: on every thread, spans must be balanced
    /// (every begin closed by a matching end, nothing closed twice) and
    /// timestamps must be monotone non-decreasing. Returns aggregate
    /// statistics on success.
    pub fn validate(&self) -> Result<TraceStats, String> {
        let mut stats = TraceStats {
            events: 0,
            spans: 0,
            max_depth: 0,
            threads: 0,
            counters: 0,
        };
        for (tid, events) in self.events_per_thread() {
            stats.threads += 1;
            let mut stack: Vec<&'static str> = Vec::new();
            let mut last_ts = 0u64;
            for ev in events {
                stats.events += 1;
                let ts = ev.ts();
                if ts < last_ts {
                    return Err(format!(
                        "tid {tid}: timestamp went backwards ({ts} < {last_ts})"
                    ));
                }
                last_ts = ts;
                match ev {
                    Event::Begin { name, .. } => {
                        stack.push(name);
                        stats.max_depth = stats.max_depth.max(stack.len());
                    }
                    Event::End { name, .. } => match stack.pop() {
                        Some(open) if open == *name => stats.spans += 1,
                        Some(open) => {
                            return Err(format!(
                                "tid {tid}: span end {name:?} does not match open span {open:?}"
                            ))
                        }
                        None => {
                            return Err(format!("tid {tid}: span end {name:?} with no open span"))
                        }
                    },
                    Event::Counter { .. } => stats.counters += 1,
                    Event::Gauge { .. } => {}
                }
            }
            if let Some(open) = stack.last() {
                return Err(format!("tid {tid}: span {open:?} never closed"));
            }
        }
        Ok(stats)
    }

    fn from_chunks(chunks: Vec<ThreadChunk>) -> Trace {
        Trace { chunks }
    }
}

// ------------------------------------------------------------------
// Recorder internals.
// ------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static DRAINED: Mutex<Vec<ThreadChunk>> = Mutex::new(Vec::new());
static SESSION_LOCK: Mutex<()> = Mutex::new(());
static ANCHOR: OnceLock<Instant> = OnceLock::new();

fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn drained() -> MutexGuard<'static, Vec<ThreadChunk>> {
    // A panic while holding this lock (e.g. a failed test assertion)
    // poisons it; the buffers themselves are always structurally sound,
    // so recover rather than cascade.
    DRAINED.lock().unwrap_or_else(|e| e.into_inner())
}

struct Local {
    enabled: bool,
    epoch: u64,
    tid: u64,
    events: Vec<Event>,
}

impl Local {
    fn new() -> Local {
        let enabled = ENABLED.load(Ordering::Relaxed);
        let (tid, epoch) = if enabled {
            (
                NEXT_TID.fetch_add(1, Ordering::Relaxed),
                EPOCH.load(Ordering::Relaxed),
            )
        } else {
            (0, 0)
        };
        Local {
            enabled,
            epoch,
            tid,
            events: Vec::new(),
        }
    }

    /// Move this thread's buffered events into the global drain. Events
    /// from a stale session (disabled, or an epoch that has since been
    /// superseded) are discarded instead.
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.events);
        if self.enabled && self.epoch == EPOCH.load(Ordering::Relaxed) {
            drained().push(ThreadChunk {
                tid: self.tid,
                events,
            });
        }
    }

    fn reset_for_session(&mut self) {
        self.enabled = true;
        self.epoch = EPOCH.load(Ordering::Relaxed);
        self.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        self.events.clear();
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::new());
}

fn with_local<R>(default: R, f: impl FnOnce(&mut Local) -> R) -> R {
    // try_with: recording during TLS teardown degrades to a no-op
    // instead of panicking.
    LOCAL
        .try_with(|l| f(&mut l.borrow_mut()))
        .unwrap_or(default)
}

/// True when a tracing session is active *for the calling thread*.
pub fn enabled() -> bool {
    with_local(false, |l| l.enabled)
}

/// Push the calling thread's buffered events into the session trace.
/// Long-lived worker threads should call this at natural boundaries (the
/// batch engine flushes once per grid cell); threads that exit flush
/// automatically via their TLS destructor.
pub fn flush_thread() {
    with_local((), Local::flush)
}

// ------------------------------------------------------------------
// Recording API.
// ------------------------------------------------------------------

/// RAII guard for a timed span: records a begin event on creation (when
/// tracing is enabled) and the matching end event on drop. Nesting is
/// enforced by scope structure — guards drop in LIFO order.
#[must_use = "a span is timed until the guard drops"]
pub struct Span {
    live: bool,
    name: &'static str,
    args: Vec<(&'static str, u64)>,
}

impl Span {
    /// Attach a numeric arg to this span (emitted with the end event).
    /// No-op when the span is dead (tracing disabled at open time).
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.live {
            self.args.push((key, value));
        }
    }

    /// True when this span is actually recording — use to skip arg
    /// computation that is not already free.
    pub fn is_live(&self) -> bool {
        self.live
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let name = self.name;
        let args = std::mem::take(&mut self.args);
        let ts = now_ns();
        with_local((), |l| {
            if l.enabled {
                l.events.push(Event::End { name, ts, args });
            }
        });
    }
}

/// Open a timed span. When tracing is disabled this is a thread-local
/// boolean check returning a dead guard — no allocation, no clock read.
pub fn span(name: &'static str) -> Span {
    let live = with_local(false, |l| {
        if !l.enabled {
            return false;
        }
        let ts = now_ns();
        l.events.push(Event::Begin {
            name,
            ts,
            label: None,
        });
        true
    });
    Span {
        live,
        name,
        args: Vec::new(),
    }
}

/// Open a timed span with a dynamic label (e.g. a workload family). The
/// label closure is only invoked when tracing is enabled, so disabled mode
/// never pays for the `String`.
pub fn span_labeled(name: &'static str, label: impl FnOnce() -> String) -> Span {
    let live = with_local(false, |l| {
        if !l.enabled {
            return false;
        }
        let ts = now_ns();
        l.events.push(Event::Begin {
            name,
            ts,
            label: Some(label().into_boxed_str()),
        });
        true
    });
    Span {
        live,
        name,
        args: Vec::new(),
    }
}

/// Increment a registry counter. Zero deltas are recorded too (they are
/// cheap and keep call sites branch-free); totals are summed at export.
pub fn counter(name: &'static str, delta: u64) {
    with_local((), |l| {
        if l.enabled {
            let ts = now_ns();
            l.events.push(Event::Counter { name, ts, delta });
        }
    });
}

/// Sample a registry gauge (point-in-time value; last sample wins).
pub fn gauge(name: &'static str, value: u64) {
    with_local((), |l| {
        if l.enabled {
            let ts = now_ns();
            l.events.push(Event::Gauge { name, ts, value });
        }
    });
}

// ------------------------------------------------------------------
// Session lifecycle.
// ------------------------------------------------------------------

/// An active tracing session. Construction enables recording process-wide
/// (for the calling thread and any thread whose buffer initialises while
/// the session is live); [`Session::finish`] disables recording and
/// returns the merged [`Trace`].
///
/// Sessions are serialised on a global lock — a second `start()` blocks
/// until the first session's guard drops, so concurrently running tests
/// cannot interleave their traces.
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

impl Session {
    /// Begin a tracing session. Call before spawning worker threads:
    /// threads whose buffers initialised while tracing was disabled do not
    /// re-check the global flag on the hot path.
    pub fn start() -> Session {
        let guard = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        ANCHOR.get_or_init(Instant::now);
        EPOCH.fetch_add(1, Ordering::Relaxed);
        drained().clear();
        ENABLED.store(true, Ordering::Relaxed);
        with_local((), Local::reset_for_session);
        Session { _guard: guard }
    }

    /// End the session: disable recording, flush the calling thread, and
    /// return the merged trace. Worker threads must have exited (or
    /// flushed) by now — the batch engine's scoped executor guarantees
    /// this; stragglers from a stale epoch are discarded, never mixed in.
    pub fn finish(self) -> Trace {
        ENABLED.store(false, Ordering::Relaxed);
        with_local((), |l| {
            l.flush();
            l.enabled = false;
        });
        Trace::from_chunks(std::mem::take(&mut *drained()))
        // `self` drops here: the Drop impl re-disables, which is a no-op.
    }
}

impl Drop for Session {
    /// A session abandoned without [`Session::finish`] — typically a
    /// panic unwinding through a test — must still disable recording,
    /// or everything after it (including work meant to run untraced)
    /// would keep recording forever. The buffered events are left in the
    /// drain; the next `start()` clears them.
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
        with_local((), |l| l.enabled = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_validate() {
        let session = Session::start();
        {
            let mut outer = span("outer");
            outer.arg("n", 7);
            {
                let _inner = span("inner");
                counter("c.x", 2);
                counter("c.x", 3);
            }
            gauge("g.y", 11);
        }
        let trace = session.finish();
        let stats = trace.validate().expect("balanced");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.counters, 2);
        assert_eq!(stats.max_depth, 2);
        assert_eq!(trace.counter_totals().get("c.x"), Some(&5));
        assert_eq!(trace.gauge_finals().get("g.y"), Some(&11));
        assert_eq!(trace.span_names(), vec!["inner", "outer"]);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        // No session active: probes are dead, and a later session must not
        // resurrect anything recorded while disabled.
        {
            let _sp = span("ghost");
            counter("ghost.count", 99);
        }
        let session = Session::start();
        let trace = session.finish();
        assert!(trace.is_empty());
    }

    #[test]
    fn labeled_span_closure_skipped_when_disabled() {
        let mut called = false;
        {
            let _sp = span_labeled("dead", || {
                called = true;
                String::from("never")
            });
        }
        assert!(!called, "label closure must not run while disabled");
    }

    #[test]
    fn sessions_are_isolated() {
        let s1 = Session::start();
        counter("a", 1);
        let t1 = s1.finish();
        let s2 = Session::start();
        counter("b", 2);
        let t2 = s2.finish();
        assert_eq!(t1.counter_totals().get("a"), Some(&1));
        assert!(!t1.counter_totals().contains_key("b"));
        assert_eq!(t2.counter_totals().get("b"), Some(&2));
        assert!(!t2.counter_totals().contains_key("a"));
    }

    #[test]
    fn validate_rejects_torn_spans() {
        let trace = Trace {
            chunks: vec![ThreadChunk {
                tid: 0,
                events: vec![Event::Begin {
                    name: "open",
                    ts: 1,
                    label: None,
                }],
            }],
        };
        assert!(trace.validate().is_err());
        let trace = Trace {
            chunks: vec![ThreadChunk {
                tid: 0,
                events: vec![
                    Event::Begin {
                        name: "a",
                        ts: 1,
                        label: None,
                    },
                    Event::End {
                        name: "b",
                        ts: 2,
                        args: Vec::new(),
                    },
                ],
            }],
        };
        assert!(trace.validate().is_err());
    }
}
