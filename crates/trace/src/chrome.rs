//! **Chrome trace-event JSON exporter** (and a structural validator for
//! the files it writes).
//!
//! The output is the JSON Object Format of the Trace Event spec: a
//! `traceEvents` array of duration (`B`/`E`) and counter (`C`) events,
//! loadable in Perfetto (<https://ui.perfetto.dev>) or `about:tracing`.
//! One event per line, which keeps the validator a simple line scanner —
//! no JSON parser dependency on either side.
//!
//! Schema (each line of `traceEvents`):
//!
//! ```json
//! {"name":"flow.solve","ph":"B","ts":12.345,"pid":1,"tid":3,"args":{"label":"..."}}
//! {"name":"flow.solve","ph":"E","ts":14.101,"pid":1,"tid":3,"args":{"flow.phases":4}}
//! {"name":"wdeq.events","ph":"C","ts":15.000,"pid":1,"tid":2,"args":{"wdeq.events":128}}
//! ```
//!
//! `ts` is microseconds (fractional; nanosecond resolution) from the
//! session anchor. `C` events carry the *running total* per counter name,
//! so Perfetto's counter tracks plot cumulative work directly.

use crate::{Event, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ts_us(ts_ns: u64) -> String {
    format!("{:.3}", ts_ns as f64 / 1e3)
}

/// Serialise a [`Trace`] as Chrome trace-event JSON. Deterministic given
/// the trace: spans in per-thread order, then counters in global timestamp
/// order with running totals.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut lines: Vec<String> = Vec::new();
    lines.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"malleable\"}}"
            .to_string(),
    );

    let mut counter_events: Vec<(u64, u64, &'static str, u64)> = Vec::new();
    for (tid, events) in trace.events_per_thread() {
        for ev in events {
            match ev {
                Event::Begin { name, ts, label } => {
                    let args = match label {
                        Some(l) => format!("{{\"label\":\"{}\"}}", esc(l)),
                        None => "{}".to_string(),
                    };
                    lines.push(format!(
                        "{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\
                         \"tid\":{tid},\"args\":{args}}}",
                        ts_us(*ts),
                    ));
                }
                Event::End { name, ts, args } => {
                    let mut body = String::from("{");
                    for (i, (k, v)) in args.iter().enumerate() {
                        if i > 0 {
                            body.push(',');
                        }
                        let _ = write!(body, "\"{k}\":{v}");
                    }
                    body.push('}');
                    lines.push(format!(
                        "{{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\
                         \"tid\":{tid},\"args\":{body}}}",
                        ts_us(*ts),
                    ));
                }
                Event::Counter { name, ts, delta } => {
                    counter_events.push((*ts, tid, name, *delta));
                }
                Event::Gauge { name, ts, value } => {
                    lines.push(format!(
                        "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                         \"tid\":{tid},\"args\":{{\"{name}\":{value}}}}}",
                        ts_us(*ts),
                    ));
                }
            }
        }
    }

    // Counters: one Perfetto track per name, plotted as the cumulative
    // total in timestamp order across all threads.
    counter_events.sort_by_key(|&(ts, tid, name, _)| (ts, tid, name));
    let mut running: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (ts, tid, name, delta) in counter_events {
        let total = running.entry(name).or_insert(0);
        *total += delta;
        lines.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
             \"tid\":{tid},\"args\":{{\"{name}\":{total}}}}}",
            ts_us(ts),
        ));
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Statistics returned by [`validate_chrome_json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeStats {
    /// `ph:"B"` events.
    pub begins: usize,
    /// `ph:"E"` events.
    pub ends: usize,
    /// `ph:"C"` events.
    pub counters: usize,
    /// Distinct tids carrying duration events.
    pub threads: usize,
    /// Deepest span nesting on any thread.
    pub max_depth: usize,
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// Validate a Chrome trace file written by [`to_chrome_json`]: every line
/// event must parse, spans must be balanced and properly nested per tid,
/// and timestamps must be monotone non-decreasing per tid. This is the
/// check CI runs against the `TRACE_*.json` artifacts.
pub fn validate_chrome_json(text: &str) -> Result<ChromeStats, String> {
    let mut stats = ChromeStats {
        begins: 0,
        ends: 0,
        counters: 0,
        threads: 0,
        max_depth: 0,
    };
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut saw_array = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end_matches(',').trim();
        if line.contains("\"traceEvents\"") {
            saw_array = true;
            continue;
        }
        if !line.starts_with('{') || !line.contains("\"ph\"") {
            continue;
        }
        let ph = field(line, "ph").ok_or_else(|| format!("line {}: no ph", lineno + 1))?;
        if ph == "M" {
            continue;
        }
        let name = field(line, "name")
            .ok_or_else(|| format!("line {}: no name", lineno + 1))?
            .to_string();
        let ts: f64 = field(line, "ts")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("line {}: bad ts", lineno + 1))?;
        let tid: u64 = field(line, "tid")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("line {}: bad tid", lineno + 1))?;

        match ph {
            "B" | "E" => {
                let prev = last_ts.entry(tid).or_insert(ts);
                if ts < *prev {
                    return Err(format!(
                        "line {}: tid {tid} timestamp went backwards ({ts} < {prev})",
                        lineno + 1
                    ));
                }
                *prev = ts;
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    stats.begins += 1;
                    stack.push(name);
                    stats.max_depth = stats.max_depth.max(stack.len());
                } else {
                    stats.ends += 1;
                    match stack.pop() {
                        Some(open) if open == name => {}
                        Some(open) => {
                            return Err(format!(
                                "line {}: tid {tid} end {name:?} does not match open {open:?}",
                                lineno + 1
                            ))
                        }
                        None => {
                            return Err(format!(
                                "line {}: tid {tid} end {name:?} with no open span",
                                lineno + 1
                            ))
                        }
                    }
                }
            }
            "C" => stats.counters += 1,
            other => return Err(format!("line {}: unknown ph {other:?}", lineno + 1)),
        }
    }

    if !saw_array {
        return Err("no traceEvents array found".to_string());
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span {open:?} never closed"));
        }
    }
    stats.threads = stacks.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, span, span_labeled, Session};

    #[test]
    fn export_roundtrip_validates() {
        let session = Session::start();
        {
            let mut outer = span_labeled("batch.cell", || "paper-uniform seed=3".into());
            outer.arg("n", 4);
            {
                let _inner = span("flow.solve");
                counter("flow.phases", 2);
            }
        }
        let trace = session.finish();
        let json = to_chrome_json(&trace);
        let stats = validate_chrome_json(&json).expect("valid chrome trace");
        assert_eq!(stats.begins, 2);
        assert_eq!(stats.ends, 2);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.max_depth, 2);
        assert!(json.contains("\"label\":\"paper-uniform seed=3\""));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn counters_export_running_totals() {
        let session = Session::start();
        counter("w.x", 2);
        counter("w.x", 3);
        let trace = session.finish();
        let json = to_chrome_json(&trace);
        assert!(json.contains("{\"w.x\":2}"));
        assert!(json.contains("{\"w.x\":5}"));
    }

    #[test]
    fn validator_rejects_torn_and_backwards() {
        let torn = "{\"traceEvents\":[\n\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":1.0,\"pid\":1,\"tid\":0,\"args\":{}}\n\
            ]}";
        assert!(validate_chrome_json(torn).is_err());
        let backwards = "{\"traceEvents\":[\n\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":2.0,\"pid\":1,\"tid\":0,\"args\":{}},\n\
            {\"name\":\"a\",\"ph\":\"E\",\"ts\":1.0,\"pid\":1,\"tid\":0,\"args\":{}}\n\
            ]}";
        assert!(validate_chrome_json(backwards).is_err());
        let crossed = "{\"traceEvents\":[\n\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":1.0,\"pid\":1,\"tid\":0,\"args\":{}},\n\
            {\"name\":\"b\",\"ph\":\"E\",\"ts\":2.0,\"pid\":1,\"tid\":0,\"args\":{}}\n\
            ]}";
        assert!(validate_chrome_json(crossed).is_err());
    }

    #[test]
    fn labels_are_escaped() {
        let session = Session::start();
        {
            let _sp = span_labeled("l", || "quote \" backslash \\ tab\t".into());
        }
        let trace = session.finish();
        let json = to_chrome_json(&trace);
        assert!(json.contains("quote \\\" backslash \\\\ tab\\t"));
        validate_chrome_json(&json).expect("escaped label still validates");
    }
}
