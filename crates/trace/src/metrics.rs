//! **The unified counter registry.**
//!
//! [`MetricSet`] is the one API behind the solver telemetry structs: a
//! metric set names its slots once and exposes indexed access, and the
//! trait provides the bookkeeping every struct used to hand-roll —
//! snapshot subtraction ([`MetricSet::since`]), accumulation
//! ([`MetricSet::plus`]), span attachment ([`MetricSet::attach`]) and
//! registry recording ([`MetricSet::record`]). `FlowStats` and
//! `ProbeTelemetry` in `malleable-core` are thin views over this trait.

use crate::Span;

/// A fixed set of named monotone counters with indexed access.
///
/// Implementors provide only the slot names and the get/set pair; the
/// delta/sum/export plumbing is shared. Slot order is the canonical
/// wire order (span args and counter events are emitted in `NAMES` order).
pub trait MetricSet: Default {
    /// Canonical slot names, e.g. `["flow.phases", "flow.augmentations"]`.
    const NAMES: &'static [&'static str];

    /// Read slot `i` (indices follow `NAMES`).
    fn get(&self, i: usize) -> u64;

    /// Write slot `i` (indices follow `NAMES`).
    fn set(&mut self, i: usize, value: u64);

    /// Slot-wise difference `self - earlier` — the snapshot-and-subtract
    /// idiom: snapshot before a solve, subtract after, get the delta.
    /// Panics in debug builds if `earlier` exceeds `self` (counters are
    /// monotone; a larger "earlier" means mismatched snapshots).
    fn since(&self, earlier: &Self) -> Self {
        let mut out = Self::default();
        for i in 0..Self::NAMES.len() {
            out.set(i, self.get(i) - earlier.get(i));
        }
        out
    }

    /// Slot-wise sum (aggregate deltas across solves).
    fn plus(&self, other: &Self) -> Self {
        let mut out = Self::default();
        for i in 0..Self::NAMES.len() {
            out.set(i, self.get(i) + other.get(i));
        }
        out
    }

    /// Sum over all slots (useful as a single-number "work" proxy).
    fn total(&self) -> u64 {
        (0..Self::NAMES.len()).map(|i| self.get(i)).sum()
    }

    /// Attach every slot as a span arg, in `NAMES` order.
    fn attach(&self, span: &mut Span) {
        for (i, name) in Self::NAMES.iter().enumerate() {
            span.arg(name, self.get(i));
        }
    }

    /// Record every non-zero slot into the session counter registry.
    fn record(&self) {
        for (i, name) in Self::NAMES.iter().enumerate() {
            let v = self.get(i);
            if v > 0 {
                crate::counter(name, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, Debug, PartialEq, Eq)]
    struct Pair {
        a: u64,
        b: u64,
    }

    impl MetricSet for Pair {
        const NAMES: &'static [&'static str] = &["t.a", "t.b"];
        fn get(&self, i: usize) -> u64 {
            [self.a, self.b][i]
        }
        fn set(&mut self, i: usize, value: u64) {
            match i {
                0 => self.a = value,
                _ => self.b = value,
            }
        }
    }

    #[test]
    fn since_plus_total() {
        let before = Pair { a: 2, b: 10 };
        let after = Pair { a: 5, b: 10 };
        assert_eq!(after.since(&before), Pair { a: 3, b: 0 });
        assert_eq!(before.plus(&after), Pair { a: 7, b: 20 });
        assert_eq!(after.total(), 15);
    }

    #[test]
    fn record_feeds_registry() {
        let session = crate::Session::start();
        Pair { a: 4, b: 0 }.record();
        Pair { a: 1, b: 2 }.record();
        let trace = session.finish();
        let totals = trace.counter_totals();
        assert_eq!(totals.get("t.a"), Some(&5));
        assert_eq!(totals.get("t.b"), Some(&2));
    }

    #[test]
    fn attach_emits_all_slots() {
        let session = crate::Session::start();
        {
            let mut sp = crate::span("m");
            Pair { a: 1, b: 0 }.attach(&mut sp);
        }
        let trace = session.finish();
        let per_thread = trace.events_per_thread();
        let events = per_thread.values().next().unwrap();
        let found = events.iter().any(|e| {
            matches!(e, crate::Event::End { args, .. }
                if args == &[("t.a", 1), ("t.b", 0)])
        });
        assert!(found, "span args must list every slot in NAMES order");
    }
}
