//! Trace-artifact validation — the check CI runs after the smoke grid.
//!
//! Scans `results/TRACE_*.json` at the workspace root (or the explicit
//! paths in the `TRACE_VALIDATE` env var, `:`-separated) and validates
//! every file: parseable line events, balanced and properly nested spans
//! per thread, monotone timestamps. When no artifacts exist (a plain
//! `cargo test` run) the test validates a self-generated trace instead,
//! so it is always meaningful and never skipped.

use malleable_trace::chrome::{to_chrome_json, validate_chrome_json};
use std::path::PathBuf;

fn artifact_paths() -> Vec<PathBuf> {
    if let Ok(list) = std::env::var("TRACE_VALIDATE") {
        return list.split(':').map(PathBuf::from).collect();
    }
    let results = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&results)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("TRACE_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    paths
}

#[test]
fn trace_artifacts_are_structurally_valid() {
    let paths = artifact_paths();
    if paths.is_empty() {
        // No artifacts on disk: validate a freshly generated trace so the
        // check exercises the same code path end to end.
        let session = malleable_trace::Session::start();
        {
            let _outer = malleable_trace::span("solve.lmax");
            let _inner = malleable_trace::span("flow.solve");
            malleable_trace::counter("flow.phases", 1);
        }
        let trace = session.finish();
        let json = to_chrome_json(&trace);
        let stats = validate_chrome_json(&json).expect("self-generated trace validates");
        assert_eq!(stats.begins, 2);
        println!("no TRACE_*.json artifacts found; validated a self-generated trace");
        return;
    }
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        match validate_chrome_json(&text) {
            Ok(stats) => {
                assert!(
                    stats.begins > 0,
                    "{}: trace has no spans at all",
                    path.display()
                );
                println!(
                    "{}: {} spans, {} counter samples, {} threads, max depth {} — OK",
                    path.display(),
                    stats.begins,
                    stats.counters,
                    stats.threads,
                    stats.max_depth
                );
            }
            Err(e) => panic!("{}: invalid trace: {e}", path.display()),
        }
    }
}
