//! Property tests for the recorder: spans stay balanced and properly
//! nested under arbitrary call shapes, round-trip through the Chrome
//! exporter, and merge cleanly across parallel threads.
//!
//! Sessions serialise on the crate's global lock, so these tests are safe
//! under the default parallel test runner.

use malleable_trace::chrome::{to_chrome_json, validate_chrome_json};
use malleable_trace::{counter, flush_thread, span, span_labeled, Session, Span};
use proptest::prelude::*;

const NAMES: &[&str] = &["solve.lmax", "probe.solve", "flow.solve", "wdeq.drive"];

const MAX_DEPTH: usize = 6;

/// Interpret a random op list against the real recorder, holding open
/// spans as RAII guards on an explicit stack. Returns the shadow counts:
/// (spans opened, sum of counter deltas).
fn execute(ops: &[u8]) -> (usize, u64) {
    let mut stack: Vec<Span> = Vec::new();
    let mut spans = 0usize;
    let mut sum = 0u64;
    for &op in ops {
        match op % 4 {
            // Open a nested span (names keyed by depth, like the solver stack).
            0 if stack.len() < MAX_DEPTH => {
                stack.push(span(NAMES[stack.len() % NAMES.len()]));
                spans += 1;
            }
            // Close the innermost open span.
            1 => {
                stack.pop();
            }
            // Record a counter increment.
            2 => {
                let delta = u64::from(op / 4) + 1;
                counter("prop.count", delta);
                sum += delta;
            }
            // A leaf span with a label and an arg, opened and closed in place.
            _ => {
                let mut sp =
                    span_labeled(NAMES[stack.len() % NAMES.len()], || format!("leaf op={op}"));
                sp.arg("op", u64::from(op));
                spans += 1;
            }
        }
    }
    // Unwind strictly LIFO — popping (not draining the Vec front-first)
    // is what keeps the end events properly nested.
    while stack.pop().is_some() {}
    (spans, sum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary open/close/count sequences produce balanced, properly
    /// nested traces whose span and counter totals match the shadow
    /// execution, both natively and after the Chrome JSON round trip.
    #[test]
    fn arbitrary_call_sequences_stay_balanced(ops in proptest::collection::vec(0u8..=255, 0..60)) {
        let session = Session::start();
        let (expect_spans, expect_sum) = execute(&ops);
        let trace = session.finish();

        let stats = trace.validate().expect("balanced, nested, monotone");
        prop_assert_eq!(stats.spans, expect_spans);
        let totals = trace.counter_totals();
        prop_assert_eq!(totals.get("prop.count").copied().unwrap_or(0), expect_sum);

        let json = to_chrome_json(&trace);
        let cstats = validate_chrome_json(&json).expect("chrome export validates");
        prop_assert_eq!(cstats.begins, expect_spans);
        prop_assert_eq!(cstats.ends, expect_spans);
    }
}

/// Parallel recording: worker threads (spawned after the session starts,
/// like the batch executor does) each record their own span stack; the
/// merged trace keeps every thread balanced with no interleaved or
/// orphaned spans, whether buffers drain via explicit flush or TLS exit.
#[test]
fn parallel_threads_merge_cleanly() {
    let session = Session::start();
    let workers = 8u64;
    let spans_per_worker = 25u64;
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                for i in 0..spans_per_worker {
                    let mut cell = span_labeled("batch.cell", || format!("worker {w} cell {i}"));
                    cell.arg("i", i);
                    {
                        let _inner = span("flow.solve");
                        counter("flow.phases", 1);
                    }
                    drop(cell);
                    // Half the workers flush per cell (the batch engine's
                    // pattern); the rest rely on the TLS destructor.
                    if w % 2 == 0 {
                        flush_thread();
                    }
                }
            });
        }
    });
    let trace = session.finish();
    let stats = trace.validate().expect("merged trace balanced per thread");
    assert_eq!(stats.spans as u64, workers * spans_per_worker * 2);
    assert_eq!(stats.threads as u64, workers);
    assert_eq!(
        trace.counter_totals().get("flow.phases").copied(),
        Some(workers * spans_per_worker)
    );
    let json = to_chrome_json(&trace);
    let cstats = validate_chrome_json(&json).expect("chrome export validates");
    assert_eq!(cstats.threads as u64, workers);
}
