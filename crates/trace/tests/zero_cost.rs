//! The zero-cost claim, asserted: with no session active, the recording
//! probes must not allocate and must not record. A counting global
//! allocator measures the disabled-mode hot path directly.
//!
//! This file holds exactly one test — the allocation counter is
//! process-global, and a sibling test running concurrently would pollute
//! the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_mode_allocates_nothing_and_records_nothing() {
    // Warm the thread-local buffer outside the measured window (first
    // touch initialises the TLS slot itself, which is not the hot path).
    {
        let _sp = malleable_trace::span("warmup");
        malleable_trace::counter("warmup", 1);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let mut sp = malleable_trace::span("flow.solve");
        sp.arg("phases", i);
        {
            let _inner = malleable_trace::span_labeled("batch.cell", || {
                // Never invoked while disabled — invoking it would allocate
                // and fail the assertion below.
                format!("cell {i}")
            });
            malleable_trace::counter("flow.augmentations", i);
            malleable_trace::gauge("batch.cells", i);
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled-mode probes must not allocate (got {} allocations)",
        after - before
    );

    // ...and none of it was recorded: a fresh session starts empty.
    let session = malleable_trace::Session::start();
    let trace = session.finish();
    assert!(trace.is_empty(), "disabled-mode activity leaked into trace");
}
