//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the tiny slice of `rand`'s API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`RngExt::random_range`] over integer and float ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms
//! and plenty for workload generation and randomized tests (cryptographic
//! quality is a non-goal).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

/// Range sampling, mirroring `rand::Rng::random_range`.
///
/// Named `RngExt` to make clear this is the vendored shim, not upstream
/// `rand` (the call sites are source-compatible either way).
pub trait RngExt {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (half-open or inclusive, int or float).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized;
}

/// Generator implementations.
pub mod rngs {
    use super::SeedableRng;

    /// xoshiro256++ — the workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand_core does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Advance the xoshiro256++ state and return 64 bits.
        pub(crate) fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl super::RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn random_range<T, R>(&mut self, range: R) -> T
        where
            R: super::SampleRange<T>,
        {
            range.sample(self)
        }
    }
}

/// Uniform u64 below `bound` (> 0), rejection-sampled to avoid modulo bias.
fn uniform_below(rng: &mut rngs::StdRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.step() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.step();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64(rng: &mut rngs::StdRng) -> f64 {
    (rng.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.step() as $t; // full-width type range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.random_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let i = rng.random_range(-3i64..7);
            assert!((-3..7).contains(&i));
            let u = rng.random_range(1u32..=6);
            assert!((1..=6).contains(&u));
            let n = rng.random_range(2usize..20);
            assert!((2..20).contains(&n));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
