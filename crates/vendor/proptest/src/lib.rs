//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's tests use — [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`arbitrary`]/`any`, `num::f64::NORMAL`, and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assume!`] macros — as plain
//! random sampling. **No shrinking**: a failing case reports the sampled
//! inputs via the assertion message and the deterministic case index, which
//! is enough to reproduce (sampling is seeded per test by case index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeFrom, RangeInclusive};

/// The per-test RNG handed to strategies.
pub type TestRng = StdRng;

/// Test-runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from `element`, with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Sample one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-domain strategy for `T`.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for any [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Numeric strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};
        use rand::RngExt;

        /// Normal (finite, non-subnormal, non-NaN) doubles of either sign.
        #[derive(Debug, Clone, Copy, Default)]
        pub struct Normal;

        /// Strategy for normal `f64` values.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

/// Everything a property test needs in one import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Construct the deterministic RNG for a property (macro plumbing; callers
/// of the `proptest!` macro need not depend on the `rand` shim directly).
pub fn new_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Stable 64-bit FNV-1a hash of the test name, used to decorrelate the
/// sampling streams of different properties.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assert inside a property (maps to `assert!` — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current sampled case when a precondition fails.
///
/// Expands to an early `return` from the per-case closure `proptest!`
/// wraps each body in — so it rejects the whole sampled case even when
/// written inside a loop in the body, matching real proptest's semantics
/// (a bare `continue` would only skip the innermost loop iteration).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::ops::ControlFlow::Break(());
        }
    };
}

/// Define property tests: each `fn` runs its body over randomly sampled
/// inputs from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest! {
            @cfg ($crate::ProptestConfig::default())
            $(#[$meta])*
            fn $($rest)*
        }
    };
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::new_rng(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Each case runs in a closure so `prop_assume!` can
                    // reject the whole case via early return (see its doc).
                    let __case = move || -> ::core::ops::ControlFlow<()> {
                        $body
                        ::core::ops::ControlFlow::Continue(())
                    };
                    let _ = __case();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (Vec<u8>, usize)> {
        (1usize..=5).prop_flat_map(|n| (crate::collection::vec(0u8..=9, n..=n), Just(n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -2i64..=2, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn flat_map_links_sizes((v, n) in pairs()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&b| b <= 9));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn assume_rejects_whole_case_even_inside_loops(x in 0u32..10) {
            for _ in 0..3 {
                prop_assume!(x != 3);
            }
            // Reached only when the assume held: the rejection must escape
            // the inner loop, not just skip one iteration of it.
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn normal_floats_are_normal(v in crate::num::f64::NORMAL) {
            prop_assert!(v.is_normal());
        }
    }

    #[test]
    fn any_samples_full_domain() {
        let mut rng: crate::TestRng = rand::SeedableRng::seed_from_u64(1);
        let mut seen_large = false;
        for _ in 0..100 {
            let v: u64 = Strategy::generate(&any::<u64>(), &mut rng);
            seen_large |= v > u32::MAX as u64;
        }
        assert!(seen_large, "full-width sampling expected");
    }
}
