//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use ([`Criterion`],
//! benchmark groups, [`BenchmarkId`], the `criterion_group!`/
//! `criterion_main!` macros) with simple wall-clock median timing instead of
//! criterion's statistical machinery. Honors the `--test` flag cargo passes
//! when compiling benches under `cargo test` by running each benchmark body
//! exactly once.
//!
//! Two criterion CLI conventions are implemented so CI can run targeted,
//! short measurement passes (`cargo bench -- --quick lmax/parametric`):
//!
//! * `--quick` — a reduced sampling plan (3 samples × 3 iterations
//!   instead of 11 × 10), like criterion's flag of the same name;
//! * positional arguments — substring **filters** on the
//!   `group/label` benchmark id; benchmarks that match no filter are
//!   skipped without running their body.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` label.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    /// `(samples, iterations-per-sample)` to run; `(1, 1)` in test mode.
    plan: (usize, usize),
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (samples, iters) = self.plan;
        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            times.push(start.elapsed() / iters as u32);
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Criterion-compatible no-op (sample counts are fixed in this shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if !self.criterion.matches(&self.name, &id.label) {
            return self;
        }
        let mut b = Bencher {
            plan: self.criterion.plan(),
            last: None,
        };
        f(&mut b, input);
        self.criterion.report(&self.name, &id.label, b.last);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        if !self.criterion.matches(&self.name, &label) {
            return self;
        }
        let mut b = Bencher {
            plan: self.criterion.plan(),
            last: None,
        };
        f(&mut b);
        self.criterion.report(&self.name, &label, b.last);
        self
    }

    /// End the group (criterion-compatible no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    quick: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--test` under `cargo test` and
        // with `--bench` under `cargo bench`; everything after `--` on the
        // `cargo bench` command line arrives verbatim. Positional
        // arguments are benchmark-id filters, like real criterion.
        let mut test_mode = false;
        let mut quick = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--quick" => quick = true,
                a if a.starts_with('-') => {} // other harness flags: ignore
                a => filters.push(a.to_string()),
            }
        }
        Criterion {
            test_mode,
            quick,
            filters,
        }
    }
}

impl Criterion {
    fn plan(&self) -> (usize, usize) {
        if self.test_mode {
            (1, 1)
        } else if self.quick {
            (3, 3)
        } else {
            (11, 10)
        }
    }

    /// `true` iff `group/label` passes the positional filters (no filters
    /// = run everything).
    fn matches(&self, group: &str, label: &str) -> bool {
        if self.filters.is_empty() {
            return true;
        }
        let id = format!("{group}/{label}");
        self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn report(&self, group: &str, label: &str, time: Option<Duration>) {
        match time {
            Some(t) if !self.test_mode => println!("{group}/{label:<24} median {t:>12.2?}"),
            Some(_) => println!("{group}/{label}: ok (test mode)"),
            None => println!("{group}/{label}: no measurement"),
        }
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        if !self.matches(&name, "-") {
            return self;
        }
        let mut b = Bencher {
            plan: self.plan(),
            last: None,
        };
        f(&mut b);
        self.report(&name, "-", b.last);
        self
    }
}

/// Prevent the optimizer from eliding a value (re-export for call sites
/// importing it from criterion rather than `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit the `main` that runs benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_criterion(filters: &[&str], quick: bool) -> Criterion {
        Criterion {
            test_mode: !quick,
            quick,
            filters: filters.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = test_criterion(&[], false);
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        g.finish();
        assert_eq!(runs, 1, "test mode runs the body once");
    }

    #[test]
    fn filters_select_by_group_and_label_substring() {
        let mut c = test_criterion(&["lmax/parametric"], false);
        let mut hits = Vec::new();
        {
            let mut g = c.benchmark_group("lmax/parametric");
            g.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, _| {
                hits.push("lmax/8");
                b.iter(|| 1)
            });
            g.finish();
        }
        {
            let mut g = c.benchmark_group("wdeq");
            g.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, _| {
                hits.push("wdeq/8");
                b.iter(|| 1)
            });
            g.finish();
        }
        assert_eq!(hits, vec!["lmax/8"], "non-matching benchmarks are skipped");
    }

    #[test]
    fn quick_mode_shrinks_the_sampling_plan() {
        let mut c = test_criterion(&[], true);
        let mut runs = 0u32;
        c.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 3 * 3, "--quick runs 3 samples × 3 iterations");
        assert_eq!(test_criterion(&[], false).plan(), (1, 1));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
