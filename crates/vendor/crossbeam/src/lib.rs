//! Offline stand-in for `crossbeam`: just the unbounded MPMC channel the
//! workspace's thread pool needs, built on `std::sync::mpsc` with a mutex
//! around the receiver to allow multiple consumers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Receive error: the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Send error: all receivers are gone (the payload is returned).
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Cloneable sending half.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Sender<T> {
        /// Enqueue a value.
        ///
        /// # Errors
        /// Fails when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Cloneable receiving half (consumers share one queue).
    #[derive(Debug, Clone)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking until one is available.
        ///
        /// # Errors
        /// Fails when the channel is empty and every sender has been
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .recv()
                .map_err(|_| RecvError)
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_to_multiple_consumers() {
        let (tx, rx) = channel::unbounded::<u64>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        });
        assert_eq!(total, 4950);
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
