//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` behind the
//! poison-free API the workspace uses (`lock()` returning a guard directly,
//! `into_inner()` returning the value). Performance characteristics of the
//! real crate are not reproduced — the call sites here guard coarse-grained
//! result collection, not hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::MutexGuard;

/// A mutual-exclusion lock with `parking_lot`'s panic-on-poison semantics.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock (blocking). Panics if a holder panicked, matching
    /// the effective behaviour the callers rely on.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}
