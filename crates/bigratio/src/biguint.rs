//! Unsigned arbitrary-precision integers on little-endian `u64` limbs.
//!
//! Representation invariant: no trailing zero limbs; zero is the empty limb
//! vector. Every constructor and operation restores this invariant.

use std::cmp::Ordering;
use std::fmt;

/// Unsigned big integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs, normalized (no trailing zeros).
    limbs: Vec<u64>,
}

const LIMB_BITS: u32 = 64;

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// From a double word.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut limbs = vec![lo, hi];
        normalize(&mut limbs);
        BigUint { limbs }
    }

    /// From raw little-endian limbs (normalizing).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        normalize(&mut limbs);
        BigUint { limbs }
    }

    /// Borrow the normalized little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64) * LIMB_BITS as u64 - top.leading_zeros() as u64,
        }
    }

    /// Value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (round-to-nearest on the top bits;
    /// may overflow to `f64::INFINITY` for enormous values).
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => self.to_u128().unwrap() as f64,
            n => {
                let top = ((self.limbs[n - 1] as u128) << 64) | self.limbs[n - 2] as u128;
                top as f64 * 2f64.powi(((n - 2) as i32) * LIMB_BITS as i32)
            }
        }
    }

    /// Addition.
    #[allow(clippy::needless_range_loop)] // limb kernel over two arrays
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u128 = 0;
        for i in 0..long.len() {
            let s = long[i] as u128 + short.get(i).copied().unwrap_or(0) as u128 + carry;
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Subtraction; returns `None` when `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_mag(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i128 = 0;
        for i in 0..self.limbs.len() {
            let d =
                self.limbs[i] as i128 - other.limbs.get(i).copied().unwrap_or(0) as i128 + borrow;
            out.push(d as u64);
            borrow = d >> 64; // arithmetic shift: 0 or −1
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Subtraction.
    ///
    /// # Panics
    /// Panics if `other > self`; sign handling lives in [`crate::BigInt`].
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint::sub underflow: rhs > lhs")
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Multiply by a single machine word.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &a in &self.limbs {
            let t = a as u128 * m as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `s` bits.
    pub fn shl_bits(&self, s: u64) -> BigUint {
        if self.is_zero() || s == 0 {
            return self.clone();
        }
        let limb_shift = (s / LIMB_BITS as u64) as usize;
        let bit_shift = (s % LIMB_BITS as u64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `s` bits (floor).
    pub fn shr_bits(&self, s: u64) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (s / LIMB_BITS as u64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (s % LIMB_BITS as u64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }

    /// Magnitude comparison.
    pub fn cmp_mag(&self, other: &BigUint) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                Ordering::Equal
            }
            o => o,
        }
    }

    /// Quotient and remainder.
    ///
    /// # Panics
    /// Panics when `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint::div_rem: division by zero");
        match self.cmp_mag(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Quotient and remainder by a single machine word.
    ///
    /// # Panics
    /// Panics when `d` is zero.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "BigUint::div_rem_u64: division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// Knuth Algorithm D (TAOCP vol. 2, 4.3.1). Preconditions checked by
    /// `div_rem`: `self > divisor`, `divisor` has ≥ 2 limbs.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // D1: normalize so the divisor's top bit is set.
        let s = divisor.limbs.last().unwrap().leading_zeros() as u64;
        let vn = divisor.shl_bits(s);
        let mut un = self.shl_bits(s).limbs;
        let n = vn.limbs.len();
        let m = un.len() - n;
        un.push(0); // room for the virtual top limb
        let vtop = vn.limbs[n - 1];
        let vsec = vn.limbs[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // D3: estimate q̂.
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = top / vtop as u128;
            let mut rhat = top % vtop as u128;
            loop {
                if qhat >= (1u128 << 64)
                    || qhat * vsec as u128 > ((rhat << 64) | un[j + n - 2] as u128)
                {
                    qhat -= 1;
                    rhat += vtop as u128;
                    if rhat >= (1u128 << 64) {
                        break;
                    }
                } else {
                    break;
                }
            }
            // D4: multiply and subtract.
            let mut carry: u128 = 0;
            let mut borrow: i128 = 0;
            for i in 0..n {
                let p = qhat * vn.limbs[i] as u128 + carry;
                carry = p >> 64;
                let d = un[j + i] as i128 - (p as u64) as i128 + borrow;
                un[j + i] = d as u64;
                borrow = d >> 64;
            }
            let d = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = d as u64;
            borrow = d >> 64;

            let mut qj = qhat as u64;
            // D6: add back (rare; probability ≈ 2/2⁶⁴ per step).
            if borrow != 0 {
                qj -= 1;
                let mut carry: u128 = 0;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn.limbs[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q[j] = qj;
        }

        // D8: denormalize the remainder.
        un.truncate(n);
        let rem = BigUint::from_limbs(un).shr_bits(s);
        (BigUint::from_limbs(q), rem)
    }

    /// Number of trailing zero bits (0 for zero).
    pub fn trailing_zeros(&self) -> u64 {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i as u64 * LIMB_BITS as u64 + l.trailing_zeros() as u64;
            }
        }
        0
    }

    /// Greatest common divisor — Lehmer's algorithm (Knuth 4.5.2,
    /// Algorithm L): each round simulates a run of Euclid steps on the
    /// leading 126 bits in machine arithmetic, then applies the
    /// accumulated 2×2 cofactor matrix to the full numbers with two
    /// scalar multiplies. Tens of Euclid iterations collapse into one
    /// multi-precision pass; word-sized operands finish on the binary
    /// GCD. (The previous Euclid-by-`div_rem` loop paid a Knuth-D
    /// division per quotient — almost always quotient 1 on the
    /// similar-sized pairs rational normalization produces.)
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        loop {
            if a.cmp_mag(&b) == Ordering::Less {
                std::mem::swap(&mut a, &mut b);
            }
            if b.is_zero() {
                return a;
            }
            if let (Some(x), Some(y)) = (a.to_u128(), b.to_u128()) {
                return BigUint::from_u128(crate::small::gcd_u128(x, y));
            }
            // Leading 126 bits of both numbers at the same scale (both
            // fit i128 with headroom for the cofactor additions below).
            let k = a.bits() - 126;
            let mut x = a.shr_bits(k).to_u128().expect("126-bit head fits") as i128;
            let mut y = b.shr_bits(k).to_u128().expect("b ≤ a at the same shift") as i128;
            // Simulated Euclid with cofactors: x̂ = A·a₀ + B·b₀,
            // ŷ = C·a₀ + D·b₀ on the truncated heads. A quotient is
            // trusted only while it is the same for the two extreme
            // completions of the truncated tail (Knuth's condition).
            let (mut ca, mut cb, mut cc, mut cd): (i128, i128, i128, i128) = (1, 0, 0, 1);
            loop {
                if y + cc == 0 || y + cd == 0 {
                    break;
                }
                let q = (x + ca) / (y + cc);
                if q != (x + cb) / (y + cd) {
                    break;
                }
                let (Some(qc), Some(qd), Some(qy)) =
                    (q.checked_mul(cc), q.checked_mul(cd), q.checked_mul(y))
                else {
                    break;
                };
                (x, y) = (y, x - qy);
                (ca, cc) = (cc, ca - qc);
                (cb, cd) = (cd, cb - qd);
            }
            if cb == 0 {
                // The heads admit no trusted quotient (huge quotient or
                // immediate disagreement): one full-precision division.
                let r = a.div_rem(&b).1;
                a = std::mem::replace(&mut b, r);
            } else {
                let a_new = lehmer_combine(ca, cb, &a, &b);
                let b_new = lehmer_combine(cc, cd, &a, &b);
                a = a_new;
                b = b_new;
            }
        }
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, mut e: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Parse a decimal string (digits only).
    pub fn from_decimal(s: &str) -> Option<BigUint> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = BigUint::zero();
        // Consume 18 digits at a time (fits in u64).
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(18);
            let chunk: u64 = s[i..i + take].parse().ok()?;
            acc = acc
                .mul_u64(10u64.pow(take as u32))
                .add(&BigUint::from_u64(chunk));
            i += take;
        }
        Some(acc)
    }
}

fn normalize(limbs: &mut Vec<u64>) {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
}

/// `p·a + q·b` for a Lehmer cofactor row — `p` and `q` never share a
/// strict sign, and the row is nonnegative by the matrix invariant.
fn lehmer_combine(p: i128, q: i128, a: &BigUint, b: &BigUint) -> BigUint {
    let pa = a.mul(&BigUint::from_u128(p.unsigned_abs()));
    let qb = b.mul(&BigUint::from_u128(q.unsigned_abs()));
    if p >= 0 && q >= 0 {
        pa.add(&qb)
    } else if p >= 0 {
        pa.checked_sub(&qb).expect("Lehmer row must be nonnegative")
    } else {
        qb.checked_sub(&pa).expect("Lehmer row must be nonnegative")
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_mag(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel 19 decimal digits at a time.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10_000_000_000_000_000_000);
            chunks.push(r);
            cur = q;
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.iter().rev() {
            write!(f, "{c:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = big(u128::from(u64::MAX));
        let b = BigUint::one();
        assert_eq!(a.add(&b), big(1u128 << 64));
    }

    #[test]
    fn sub_basics() {
        assert_eq!(big(100).sub(&big(58)), big(42));
        assert_eq!(big(1u128 << 64).sub(&BigUint::one()), big(u64::MAX as u128));
        assert!(big(1).checked_sub(&big(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    fn mul_cross_limb() {
        let a = big(u64::MAX as u128);
        assert_eq!(a.mul(&a), big((u64::MAX as u128) * (u64::MAX as u128)));
        assert_eq!(a.mul(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl_bits(130).shr_bits(130), big(1));
        assert_eq!(big(0b1011).shl_bits(3), big(0b1011000));
        assert_eq!(big(0b1011).shr_bits(2), big(0b10));
        assert_eq!(big(7).shr_bits(64), BigUint::zero());
        assert_eq!(BigUint::zero().shl_bits(100), BigUint::zero());
    }

    #[test]
    fn div_rem_single_limb() {
        let (q, r) = big(1000).div_rem(&big(7));
        assert_eq!((q, r), (big(142), big(6)));
    }

    #[test]
    fn div_rem_multi_limb() {
        // (2^200 + 12345) / (2^100 + 7)
        let u = BigUint::one().shl_bits(200).add(&big(12345));
        let v = BigUint::one().shl_bits(100).add(&big(7));
        let (q, r) = u.div_rem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r.cmp_mag(&v) == std::cmp::Ordering::Less);
    }

    #[test]
    fn div_rem_equal_and_smaller() {
        let v = big(12345678901234567890);
        assert_eq!(v.div_rem(&v), (BigUint::one(), BigUint::zero()));
        assert_eq!(big(3).div_rem(&v), (BigUint::zero(), big(3)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(48).gcd(&big(36)), big(12));
        assert_eq!(big(17).gcd(&big(5)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
    }

    #[test]
    fn pow_small() {
        assert_eq!(big(3).pow(5), big(243));
        assert_eq!(big(2).pow(100), BigUint::one().shl_bits(100));
        assert_eq!(big(7).pow(0), BigUint::one());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let v = BigUint::from_decimal("123456789012345678901234567890123456789").unwrap();
        assert_eq!(v.to_string(), "123456789012345678901234567890123456789");
        assert_eq!(BigUint::from_decimal(""), None);
        assert_eq!(BigUint::from_decimal("12a"), None);
        assert_eq!(BigUint::zero().to_string(), "0");
    }

    #[test]
    fn to_f64_magnitudes() {
        assert_eq!(big(0).to_f64(), 0.0);
        assert_eq!(big(1 << 20).to_f64(), (1u64 << 20) as f64);
        let huge = BigUint::one().shl_bits(200);
        let expected = 2f64.powi(200);
        assert!((huge.to_f64() / expected - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(big(a as u128).add(&big(b as u128)),
                            big(a as u128 + b as u128));
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(big(a as u128).mul(&big(b as u128)),
                            big(a as u128 * b as u128));
        }

        #[test]
        fn prop_div_rem_invariant(limbs_u in proptest::collection::vec(any::<u64>(), 1..6),
                                  limbs_v in proptest::collection::vec(any::<u64>(), 1..4)) {
            let u = BigUint::from_limbs(limbs_u);
            let v = BigUint::from_limbs(limbs_v);
            prop_assume!(!v.is_zero());
            let (q, r) = u.div_rem(&v);
            prop_assert_eq!(q.mul(&v).add(&r), u);
            prop_assert!(r < v);
        }

        #[test]
        fn prop_sub_add_roundtrip(limbs_a in proptest::collection::vec(any::<u64>(), 0..5),
                                  limbs_b in proptest::collection::vec(any::<u64>(), 0..5)) {
            let a = BigUint::from_limbs(limbs_a);
            let b = BigUint::from_limbs(limbs_b);
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            prop_assert_eq!(hi.sub(&lo).add(&lo), hi);
        }

        #[test]
        fn prop_gcd_divides(a in 1u64.., b in 1u64..) {
            let g = big(a as u128).gcd(&big(b as u128));
            let (_, r1) = big(a as u128).div_rem(&g);
            let (_, r2) = big(b as u128).div_rem(&g);
            prop_assert!(r1.is_zero() && r2.is_zero());
        }

        #[test]
        fn prop_gcd_multiprecision_planted_factor(
            limbs_a in proptest::collection::vec(any::<u64>(), 3..9),
            limbs_b in proptest::collection::vec(any::<u64>(), 3..9),
            limbs_g in proptest::collection::vec(any::<u64>(), 1..5))
        {
            // Exercise the Lehmer rounds: multi-limb operands with a
            // planted common factor g. gcd(a·g, b·g) = gcd(a,b)·g must
            // divide both, and the cofactors must be coprime after
            // dividing it out.
            let a = BigUint::from_limbs(limbs_a);
            let b = BigUint::from_limbs(limbs_b);
            let g = BigUint::from_limbs(limbs_g);
            prop_assume!(!a.is_zero() && !b.is_zero() && !g.is_zero());
            let (ag, bg) = (a.mul(&g), b.mul(&g));
            let d = ag.gcd(&bg);
            // d divides both inputs and is a multiple of the plant.
            let (qa, ra) = ag.div_rem(&d);
            let (qb, rb) = bg.div_rem(&d);
            prop_assert!(ra.is_zero() && rb.is_zero());
            let (_, rg) = d.div_rem(&g);
            prop_assert!(rg.is_zero());
            // Maximality: the cofactors share no further factor.
            prop_assert_eq!(qa.gcd(&qb), BigUint::one());
        }

        #[test]
        fn prop_gcd_matches_euclid_reference(
            limbs_a in proptest::collection::vec(any::<u64>(), 1..7),
            limbs_b in proptest::collection::vec(any::<u64>(), 1..7))
        {
            let a = BigUint::from_limbs(limbs_a);
            let b = BigUint::from_limbs(limbs_b);
            prop_assume!(!b.is_zero());
            // Schoolbook Euclid as the oracle.
            let (mut x, mut y) = (a.clone(), b.clone());
            while !y.is_zero() {
                let r = x.div_rem(&y).1;
                x = std::mem::replace(&mut y, r);
            }
            prop_assert_eq!(a.gcd(&b), x);
        }

        #[test]
        fn prop_shift_roundtrip(limbs in proptest::collection::vec(any::<u64>(), 0..4),
                                s in 0u64..200) {
            let a = BigUint::from_limbs(limbs);
            prop_assert_eq!(a.shl_bits(s).shr_bits(s), a);
        }

        #[test]
        fn prop_display_parse_roundtrip(limbs in proptest::collection::vec(any::<u64>(), 0..4)) {
            let a = BigUint::from_limbs(limbs);
            prop_assert_eq!(BigUint::from_decimal(&a.to_string()).unwrap(), a);
        }
    }
}
