//! Fixed-limb small rationals: the stack-allocated fast path of
//! [`Rational`](crate::Rational).
//!
//! A [`SmallRational`] is an `i128` numerator over a positive `i128`
//! denominator, normalized (coprime, zero is `0/1`). Every operation is
//! overflow-checked and returns `None` when a reduced result would not fit
//! the fixed limbs — the caller promotes to the heap `BigInt`
//! representation at that point. Normalization runs binary GCD on machine
//! words (no allocation, no division loop), and additions/multiplications
//! pre-reduce their cross factors (Knuth 4.5.1) so intermediate products
//! overflow as rarely as possible.
//!
//! Comparisons never need promotion: the 128×128→256-bit cross products
//! are formed with a widening schoolbook multiply on `u64` halves.
//!
//! Internal invariants (enforced by every constructor):
//! * `den > 0`;
//! * `gcd(|num|, den) = 1`, zero is `0/1`;
//! * `num > i128::MIN` — magnitudes stay `≤ i128::MAX`, so negation can
//!   never overflow.

use std::cmp::Ordering;

/// A normalized rational that fits in two machine double-words.
///
/// `Copy`, allocation-free, and only constructible in normalized form.
/// Arithmetic is overflow-checked: `None` means "promote to the heap
/// representation", never a wrong answer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SmallRational {
    num: i128,
    den: i128,
}

/// Binary GCD on unsigned machine words. `gcd(0, b) = b`, `gcd(a, 0) = a`.
#[inline(always)]
pub fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Full 128×128→256-bit product as `(hi, lo)` — schoolbook on `u64`
/// halves, branch-free. Lexicographic comparison of the pairs compares
/// the products.
#[inline(always)]
fn widening_mul_u128(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

const MAG_MAX: u128 = i128::MAX as u128;

impl SmallRational {
    /// Zero (`0/1`).
    #[inline(always)]
    pub const fn zero() -> Self {
        SmallRational { num: 0, den: 1 }
    }

    /// One (`1/1`).
    #[inline(always)]
    pub const fn one() -> Self {
        SmallRational { num: 1, den: 1 }
    }

    /// An exact machine integer.
    #[inline(always)]
    pub const fn from_i64(v: i64) -> Self {
        SmallRational {
            num: v as i128,
            den: 1,
        }
    }

    /// Normalize `n / d`. Returns `None` when the *reduced* numerator or
    /// denominator magnitude exceeds `i128::MAX` (only possible for
    /// `i128::MIN` inputs that do not reduce).
    ///
    /// # Panics
    /// Debug-asserts `d != 0`; the zero-denominator guard lives in
    /// [`Rational`](crate::Rational)'s public constructors.
    #[inline(always)]
    pub fn new_checked(n: i128, d: i128) -> Option<Self> {
        debug_assert!(d != 0, "SmallRational::new_checked: zero denominator");
        if n == 0 {
            return Some(Self::zero());
        }
        let neg = (n < 0) != (d < 0);
        let (nm, dm) = (n.unsigned_abs(), d.unsigned_abs());
        let g = gcd_u128(nm, dm);
        Self::from_magnitudes(neg, nm / g, dm / g)
    }

    /// Assemble from coprime magnitudes; `None` when either exceeds the
    /// signed range.
    #[inline(always)]
    pub(crate) fn from_magnitudes(neg: bool, num_mag: u128, den_mag: u128) -> Option<Self> {
        if num_mag > MAG_MAX || den_mag > MAG_MAX {
            return None;
        }
        let num = if neg {
            -(num_mag as i128)
        } else {
            num_mag as i128
        };
        Some(SmallRational {
            num,
            den: den_mag as i128,
        })
    }

    /// The signed numerator (coprime with the denominator).
    #[inline(always)]
    pub const fn num(&self) -> i128 {
        self.num
    }

    /// The positive denominator.
    #[inline(always)]
    pub const fn den(&self) -> i128 {
        self.den
    }

    /// `true` iff zero.
    #[inline(always)]
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Checked addition of normalized operands (Knuth 4.5.1: pre-reduce
    /// the denominators by their GCD so cross products stay small, and
    /// finish with one word GCD instead of a full renormalization).
    #[inline(always)]
    pub fn checked_add(self, other: Self) -> Option<Self> {
        let (a, b, c, d) = (self.num, self.den, other.num, other.den);
        let g1 = gcd_u128(b as u128, d as u128) as i128;
        if g1 == 1 {
            // Coprime denominators: ad + cb is already coprime with bd.
            let num = a.checked_mul(d)?.checked_add(c.checked_mul(b)?)?;
            if num == 0 {
                return Some(Self::zero());
            }
            if num == i128::MIN {
                return None;
            }
            let den = b.checked_mul(d)?;
            Some(SmallRational { num, den })
        } else {
            let bp = b / g1;
            let dp = d / g1;
            let t = a.checked_mul(dp)?.checked_add(c.checked_mul(bp)?)?;
            if t == 0 {
                return Some(Self::zero());
            }
            // Only the shared factor g1 can survive into gcd(t, b·d').
            let g2 = gcd_u128(t.unsigned_abs(), g1 as u128) as i128;
            let num = t / g2;
            if num == i128::MIN {
                return None;
            }
            let den = bp.checked_mul(d / g2)?;
            Some(SmallRational { num, den })
        }
    }

    /// Checked subtraction.
    #[inline(always)]
    pub fn checked_sub(self, other: Self) -> Option<Self> {
        self.checked_add(other.neg())
    }

    /// Checked multiplication, cross-reducing first (`gcd(|a|, d)` and
    /// `gcd(|c|, b)`) so the products are as small as the result allows.
    #[inline(always)]
    pub fn checked_mul(self, other: Self) -> Option<Self> {
        let (a, b, c, d) = (self.num, self.den, other.num, other.den);
        if a == 0 || c == 0 {
            return Some(Self::zero());
        }
        let g1 = gcd_u128(a.unsigned_abs(), d as u128) as i128;
        let g2 = gcd_u128(c.unsigned_abs(), b as u128) as i128;
        let num = (a / g1).checked_mul(c / g2)?;
        if num == i128::MIN {
            return None;
        }
        let den = (b / g2).checked_mul(d / g1)?;
        Some(SmallRational { num, den })
    }

    /// Checked division.
    ///
    /// # Panics
    /// Debug-asserts `other` is non-zero; the public guard lives in
    /// [`Rational`](crate::Rational).
    #[inline(always)]
    pub fn checked_div(self, other: Self) -> Option<Self> {
        debug_assert!(!other.is_zero(), "SmallRational::checked_div by zero");
        self.checked_mul(other.recip())
    }

    /// Negation — infallible thanks to the `num > i128::MIN` invariant.
    #[inline(always)]
    pub const fn neg(self) -> Self {
        SmallRational {
            num: -self.num,
            den: self.den,
        }
    }

    /// Multiplicative inverse — infallible on non-zero values (magnitudes
    /// just swap).
    ///
    /// # Panics
    /// Debug-asserts the value is non-zero.
    #[inline(always)]
    pub const fn recip(self) -> Self {
        debug_assert!(self.num != 0, "SmallRational::recip of zero");
        if self.num < 0 {
            SmallRational {
                num: -self.den,
                den: -self.num,
            }
        } else {
            SmallRational {
                num: self.den,
                den: self.num,
            }
        }
    }

    /// Exact comparison without promotion: sign test, then the 256-bit
    /// cross products `|a|·d` vs `|c|·b`.
    #[inline(always)]
    pub fn cmp_small(&self, other: &Self) -> Ordering {
        let sa = self.num.signum();
        let sb = other.num.signum();
        if sa != sb {
            return sa.cmp(&sb);
        }
        if sa == 0 {
            return Ordering::Equal;
        }
        let lhs = widening_mul_u128(self.num.unsigned_abs(), other.den as u128);
        let rhs = widening_mul_u128(other.num.unsigned_abs(), self.den as u128);
        let mag = lhs.cmp(&rhs);
        if sa > 0 {
            mag
        } else {
            mag.reverse()
        }
    }

    /// Exact floor as a machine integer (`⌊num/den⌋`; Euclidean division
    /// because `den > 0`).
    #[inline(always)]
    pub const fn floor_i128(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Exact ceiling as a machine integer.
    #[inline(always)]
    pub const fn ceil_i128(&self) -> i128 {
        // −⌊−x⌋; safe because num > i128::MIN.
        -(-self.num).div_euclid(self.den)
    }

    /// Approximate `f64` value. Exact whenever the value is representable
    /// (numerator and denominator each convert exactly below 2⁵³, and the
    /// division then rounds once).
    #[inline(always)]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(n: i128, d: i128) -> SmallRational {
        SmallRational::new_checked(n, d).expect("fits")
    }

    #[test]
    fn normalization_and_signs() {
        assert_eq!(s(2, 4), s(1, 2));
        assert_eq!(s(-2, 4), s(1, -2));
        assert_eq!(s(6, -4), s(-3, 2));
        assert_eq!(s(0, 7), SmallRational::zero());
        assert_eq!(s(5, 5), SmallRational::one());
        assert_eq!(s(-7, 1).num(), -7);
        assert_eq!(s(-7, 2).den(), 2);
    }

    #[test]
    fn gcd_machine_words() {
        assert_eq!(gcd_u128(0, 5), 5);
        assert_eq!(gcd_u128(5, 0), 5);
        assert_eq!(gcd_u128(48, 36), 12);
        assert_eq!(gcd_u128(1 << 100, 1 << 64), 1 << 64);
        assert_eq!(gcd_u128(u128::MAX, u128::MAX - 1), 1);
    }

    #[test]
    fn arithmetic_small() {
        assert_eq!(s(1, 2).checked_add(s(1, 3)), Some(s(5, 6)));
        assert_eq!(s(1, 2).checked_sub(s(1, 3)), Some(s(1, 6)));
        assert_eq!(s(2, 3).checked_mul(s(3, 4)), Some(s(1, 2)));
        assert_eq!(s(1, 2).checked_div(s(1, 4)), Some(s(2, 1)));
        assert_eq!(s(1, 2).checked_add(s(-1, 2)), Some(SmallRational::zero()));
        assert_eq!(s(3, 4).recip(), s(4, 3));
        assert_eq!(s(-3, 4).recip(), s(-4, 3));
        assert_eq!(s(1, 3).neg(), s(-1, 3));
    }

    #[test]
    fn overflow_promotes_not_wraps() {
        let big = s(i128::MAX, 1);
        assert_eq!(big.checked_add(s(1, 1)), None);
        assert_eq!(big.checked_mul(s(2, 1)), None);
        // Pre-reduction rescues results that do fit.
        let half_max = s(i128::MAX / 2, 1);
        assert_eq!(half_max.checked_mul(s(2, 1)), Some(s(i128::MAX - 1, 1)));
        let deep_den = s(1, i128::MAX);
        assert_eq!(deep_den.checked_mul(s(i128::MAX, 1)), Some(s(1, 1)));
    }

    #[test]
    fn i128_min_inputs_reduce_or_refuse() {
        // i128::MIN magnitudes are 2¹²⁷ — storable only after reduction.
        assert_eq!(
            SmallRational::new_checked(i128::MIN, 2),
            Some(s(-(1i128 << 126), 1))
        );
        assert_eq!(
            SmallRational::new_checked(i128::MIN, i128::MIN),
            Some(SmallRational::one())
        );
        assert_eq!(SmallRational::new_checked(i128::MIN, 1), None);
        assert_eq!(SmallRational::new_checked(1, i128::MIN), None);
        assert_eq!(SmallRational::new_checked(i128::MIN, 3), None);
    }

    #[test]
    fn cmp_without_promotion() {
        assert_eq!(s(1, 3).cmp_small(&s(1, 2)), Ordering::Less);
        assert_eq!(s(-1, 2).cmp_small(&s(-1, 3)), Ordering::Less);
        assert_eq!(s(2, 6).cmp_small(&s(1, 3)), Ordering::Equal);
        // Cross products overflow i128 but the 256-bit compare is exact.
        let a = s(i128::MAX, i128::MAX - 1);
        let b = s(i128::MAX - 1, i128::MAX - 2);
        assert_eq!(a.cmp_small(&b), Ordering::Less);
        assert_eq!(b.cmp_small(&a), Ordering::Greater);
        assert_eq!(a.cmp_small(&a), Ordering::Equal);
    }

    #[test]
    fn floor_ceil_machine() {
        assert_eq!(s(7, 2).floor_i128(), 3);
        assert_eq!(s(7, 2).ceil_i128(), 4);
        assert_eq!(s(-7, 2).floor_i128(), -4);
        assert_eq!(s(-7, 2).ceil_i128(), -3);
        assert_eq!(s(6, 2).floor_i128(), 3);
        assert_eq!(s(6, 2).ceil_i128(), 3);
    }

    proptest! {
        #[test]
        fn prop_add_mul_match_naive(a in -1_000_000i64..1_000_000, b in 1i64..1_000_000,
                                    c in -1_000_000i64..1_000_000, d in 1i64..1_000_000) {
            let (a, b, c, d) = (a as i128, b as i128, c as i128, d as i128);
            let x = s(a, b);
            let y = s(c, d);
            // Small operands never overflow the checked lane, and the
            // results agree with the unreduced cross formulas.
            let sum = x.checked_add(y).expect("small operands fit");
            prop_assert_eq!(sum.cmp_small(&s(a * d + c * b, b * d)), Ordering::Equal);
            let prod = x.checked_mul(y).expect("small operands fit");
            prop_assert_eq!(prod.cmp_small(&s(a * c, b * d)), Ordering::Equal);
        }

        #[test]
        fn prop_cmp_matches_wide_integers(a in any::<i64>(), b in 1i64.., c in any::<i64>(), d in 1i64..) {
            let lhs = s(a as i128, b as i128);
            let rhs = s(c as i128, d as i128);
            let exact = (a as i128 * d as i128).cmp(&(c as i128 * b as i128));
            prop_assert_eq!(lhs.cmp_small(&rhs), exact);
        }

        #[test]
        fn prop_widening_mul_matches_splits(a_hi in any::<u64>(), a_lo in any::<u64>(),
                                            b in any::<u64>()) {
            // Against an exactly computable reference: b fits u64, so
            // a·b = (a_hi·b) << 64 + a_lo·b with u128 intermediates.
            let a = ((a_hi as u128) << 64) | a_lo as u128;
            let (hi, lo) = widening_mul_u128(a, b as u128);
            let low_part = a_lo as u128 * b as u128;
            let high_part = a_hi as u128 * b as u128;
            let expect_lo = low_part.wrapping_add(high_part << 64);
            let expect_hi = (high_part >> 64) + (((low_part >> 64) + (high_part & ((1u128 << 64) - 1))) >> 64);
            prop_assert_eq!((hi, lo), (expect_hi, expect_lo));
        }
    }
}
