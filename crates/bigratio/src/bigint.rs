//! Signed arbitrary-precision integers: a [`Sign`] plus a [`BigUint`]
//! magnitude.

use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Neg,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Pos,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Neg => Sign::Pos,
            Sign::Zero => Sign::Zero,
            Sign::Pos => Sign::Neg,
        }
    }

    pub(crate) fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Pos,
            _ => Sign::Neg,
        }
    }
}

/// Signed big integer (sign–magnitude).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// One.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Pos,
            mag: BigUint::one(),
        }
    }

    /// From a signed machine word.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Pos,
                mag: BigUint::from_u64(v as u64),
            },
            Ordering::Less => BigInt {
                sign: Sign::Neg,
                mag: BigUint::from_u64(v.unsigned_abs()),
            },
        }
    }

    /// From a signed double word (`i128::MIN` included).
    pub fn from_i128(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Pos,
                mag: BigUint::from_u128(v as u128),
            },
            Ordering::Less => BigInt {
                sign: Sign::Neg,
                mag: BigUint::from_u128(v.unsigned_abs()),
            },
        }
    }

    /// From an unsigned magnitude (non-negative result).
    pub fn from_biguint(mag: BigUint) -> Self {
        if mag.is_zero() {
            Self::zero()
        } else {
            BigInt {
                sign: Sign::Pos,
                mag,
            }
        }
    }

    /// Construct with explicit sign; `sign` is ignored when `mag` is zero.
    pub fn with_sign(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            Self::zero()
        } else {
            debug_assert!(sign != Sign::Zero, "non-zero magnitude needs a sign");
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consume into the magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Pos
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Neg
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_biguint(self.mag.clone())
    }

    /// Truncated division (quotient rounds toward zero), with remainder of
    /// the dividend's sign — the convention of Rust's `/` and `%`.
    ///
    /// # Panics
    /// Panics when `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt::div_rem: division by zero");
        let (q_mag, r_mag) = self.mag.div_rem(&other.mag);
        let q = BigInt::with_sign(self.sign.mul(other.sign), q_mag);
        let r = BigInt::with_sign(self.sign, r_mag);
        (q, r)
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Neg => -m,
            _ => m,
        }
    }

    /// Value as `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Pos => i64::try_from(m).ok(),
            Sign::Neg => {
                if m <= i64::MAX as u64 + 1 {
                    Some((-(m as i128)) as i64)
                } else {
                    None
                }
            }
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt {
                sign: a,
                mag: self.mag.add(&other.mag),
            },
            _ => match self.mag.cmp_mag(&other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::with_sign(self.sign, self.mag.sub(&other.mag)),
                Ordering::Less => BigInt::with_sign(other.sign, other.mag.sub(&self.mag)),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other.clone())
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        BigInt::with_sign(self.sign.mul(other.sign), self.mag.mul(&other.mag))
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.flip();
        self
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, other: BigInt) -> BigInt {
        &self + &other
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, other: BigInt) -> BigInt {
        &self - &other
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, other: BigInt) -> BigInt {
        &self * &other
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Neg, Sign::Neg) => other.mag.cmp_mag(&self.mag),
            (Sign::Neg, _) => Ordering::Less,
            (Sign::Zero, Sign::Neg) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Pos) => Ordering::Less,
            (Sign::Pos, Sign::Pos) => self.mag.cmp_mag(&other.mag),
            (Sign::Pos, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Neg {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from_i64(v)
    }

    #[test]
    fn construction_signs() {
        assert!(bi(0).is_zero());
        assert!(bi(5).is_positive());
        assert!(bi(-5).is_negative());
        assert_eq!(bi(i64::MIN).to_string(), i64::MIN.to_string());
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(&bi(5) + &bi(-3), bi(2));
        assert_eq!(&bi(3) + &bi(-5), bi(-2));
        assert_eq!(&bi(-3) + &bi(-4), bi(-7));
        assert_eq!(&bi(4) + &bi(-4), bi(0));
        assert_eq!(&bi(0) + &bi(-4), bi(-4));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(&bi(5) - &bi(8), bi(-3));
        assert_eq!(-bi(7), bi(-7));
        assert_eq!(-bi(0), bi(0));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(&bi(-3) * &bi(4), bi(-12));
        assert_eq!(&bi(-3) * &bi(-4), bi(12));
        assert_eq!(&bi(-3) * &bi(0), bi(0));
    }

    #[test]
    fn div_rem_truncated() {
        // Rust convention: -7 / 2 == -3 rem -1.
        let (q, r) = bi(-7).div_rem(&bi(2));
        assert_eq!((q, r), (bi(-3), bi(-1)));
        let (q, r) = bi(7).div_rem(&bi(-2));
        assert_eq!((q, r), (bi(-3), bi(1)));
    }

    #[test]
    fn ordering() {
        assert!(bi(-5) < bi(-3));
        assert!(bi(-3) < bi(0));
        assert!(bi(0) < bi(2));
        assert!(bi(2) < bi(10));
    }

    #[test]
    fn to_i64_roundtrip_limits() {
        assert_eq!(bi(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(bi(i64::MIN).to_i64(), Some(i64::MIN));
        let too_big = &bi(i64::MAX) + &bi(1);
        assert_eq!(too_big.to_i64(), None);
    }

    proptest! {
        #[test]
        fn prop_matches_i128(a in -(1i64<<62)..(1i64<<62), b in -(1i64<<62)..(1i64<<62)) {
            prop_assert_eq!((&bi(a) + &bi(b)).to_string(), (a as i128 + b as i128).to_string());
            prop_assert_eq!((&bi(a) - &bi(b)).to_string(), (a as i128 - b as i128).to_string());
            prop_assert_eq!((&bi(a) * &bi(b)).to_string(), (a as i128 * b as i128).to_string());
        }

        #[test]
        fn prop_div_rem_matches_rust(a in any::<i64>(), b in any::<i64>()) {
            prop_assume!(b != 0);
            let (q, r) = bi(a).div_rem(&bi(b));
            prop_assert_eq!(q.to_string(), (a as i128 / b as i128).to_string());
            prop_assert_eq!(r.to_string(), (a as i128 % b as i128).to_string());
        }

        #[test]
        fn prop_cmp_matches(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
        }
    }
}
