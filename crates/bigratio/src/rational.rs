//! Normalized rationals and their [`numkit::Scalar`] implementation.
//!
//! Two-tier representation: values whose reduced numerator and denominator
//! magnitudes fit `i128` live inline as a [`SmallRational`] (stack-only,
//! binary-GCD normalization, overflow-checked arithmetic); everything else
//! promotes to the heap `BigInt`/`BigUint` pair. The invariant is
//! *canonical*: a value that fits the small representation is **always**
//! stored small — every constructor demotes, so arithmetic that shrinks a
//! promoted value drops back to the fast path on the spot. `PartialEq`,
//! `Ord` and `Hash` are nevertheless implemented value-wise (they agree
//! across representations even for hand-built non-canonical values).

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use crate::small::SmallRational;
use numkit::Scalar;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den`.
///
/// Invariants: `den > 0`, `gcd(|num|, den) = 1`, and zero is `0/1`; values
/// whose reduced parts fit two machine double-words are stored inline
/// (see the module docs).
///
/// ```
/// use bigratio::Rational;
/// let third = Rational::new(1, 3);
/// let sum = third.clone() + third.clone() + third;
/// assert_eq!(sum, Rational::from_int(1));
/// ```
#[derive(Clone)]
pub struct Rational {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Fixed-limb fast path (the overwhelmingly common case).
    Small(SmallRational),
    /// Heap fallback for values past the `i128` boundary.
    Big { num: BigInt, den: BigUint },
}

impl Rational {
    /// `n / d` from machine integers. Always lands on the fast path
    /// (`i64` inputs reduce within the fixed limbs, `i64::MIN` included).
    ///
    /// # Panics
    /// Panics when `d == 0`.
    #[inline]
    pub fn new(n: i64, d: i64) -> Self {
        assert!(d != 0, "Rational::new: zero denominator");
        let small = SmallRational::new_checked(n as i128, d as i128)
            .expect("i64 inputs always fit the fixed limbs");
        Rational::from_small(small)
    }

    /// `n / d` from double-word integers; promotes only when the
    /// *reduced* parts exceed the fixed limbs (`i128::MIN` magnitudes
    /// that do not cancel).
    ///
    /// # Panics
    /// Panics when `d == 0`.
    #[inline]
    pub fn from_ratio_i128(n: i128, d: i128) -> Self {
        assert!(d != 0, "Rational::from_ratio_i128: zero denominator");
        match SmallRational::new_checked(n, d) {
            Some(small) => Rational::from_small(small),
            None => {
                let sign_flip = d < 0;
                let num = BigInt::from_i128(n);
                let num = if sign_flip { -num } else { num };
                Self::from_parts(num, BigUint::from_u128(d.unsigned_abs()))
            }
        }
    }

    /// Wrap an already-normalized small rational.
    #[inline(always)]
    pub fn from_small(small: SmallRational) -> Self {
        Rational {
            repr: Repr::Small(small),
        }
    }

    /// The fixed-limb representation, when the value is on the fast path.
    #[inline(always)]
    pub fn as_small(&self) -> Option<SmallRational> {
        match &self.repr {
            Repr::Small(s) => Some(*s),
            Repr::Big { .. } => None,
        }
    }

    /// `true` iff the value is on the heap (promoted) representation —
    /// exposed for tests and diagnostics.
    #[inline]
    pub fn is_promoted(&self) -> bool {
        matches!(self.repr, Repr::Big { .. })
    }

    /// From big parts, normalizing (and demoting to the fixed limbs when
    /// the reduced parts fit).
    ///
    /// # Panics
    /// Panics when `den` is zero.
    pub fn from_parts(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "Rational::from_parts: zero denominator");
        if num.is_zero() {
            return Self::zero_();
        }
        // Word-sized parts reduce on the machine-word binary GCD without
        // touching the heap again.
        if let (Some(nm), Some(dm)) = (num.magnitude().to_u128(), den.to_u128()) {
            let g = crate::small::gcd_u128(nm, dm);
            if let Some(small) = SmallRational::from_magnitudes(num.is_negative(), nm / g, dm / g) {
                return Rational::from_small(small);
            }
            // 2¹²⁷ magnitudes that did not reduce: fall through to the
            // heap path with the already-computed gcd.
            let num_mag = BigUint::from_u128(nm / g);
            return Rational {
                repr: Repr::Big {
                    num: BigInt::with_sign(num.sign(), num_mag),
                    den: BigUint::from_u128(dm / g),
                },
            };
        }
        let g = num.magnitude().gcd(&den);
        let (num_mag, _) = num.magnitude().div_rem(&g);
        let (den, _) = den.div_rem(&g);
        Self::from_coprime_big(BigInt::with_sign(num.sign(), num_mag), den)
    }

    /// Like [`Rational::from_parts`] but **never demotes** — the result
    /// stays on the heap representation even when the value fits the
    /// fixed limbs. Exists so tests can prove `Eq`/`Ord`/`Hash` agree
    /// across representations of the same value; real code never wants
    /// it.
    #[doc(hidden)]
    pub fn from_parts_nodemote(num: BigInt, den: BigUint) -> Self {
        assert!(
            !den.is_zero(),
            "Rational::from_parts_nodemote: zero denominator"
        );
        let g = num.magnitude().gcd(&den);
        let (num_mag, _) = num.magnitude().div_rem(&g);
        let (den, _) = den.div_rem(&g);
        Rational {
            repr: Repr::Big {
                num: BigInt::with_sign(num.sign(), num_mag),
                den,
            },
        }
    }

    /// Assemble from coprime big parts, demoting when they fit.
    #[inline]
    fn from_coprime_big(num: BigInt, den: BigUint) -> Self {
        if let (Some(nm), Some(dm)) = (num.magnitude().to_u128(), den.to_u128()) {
            if let Some(small) = SmallRational::from_magnitudes(num.is_negative(), nm, dm) {
                return Rational::from_small(small);
            }
        }
        Rational {
            repr: Repr::Big { num, den },
        }
    }

    #[inline(always)]
    fn zero_() -> Self {
        Rational::from_small(SmallRational::zero())
    }

    /// Exact integer.
    #[inline(always)]
    pub fn from_int(v: i64) -> Self {
        Rational::from_small(SmallRational::from_i64(v))
    }

    /// Exact double-word integer.
    #[inline]
    pub fn from_int_i128(v: i128) -> Self {
        match SmallRational::new_checked(v, 1) {
            Some(small) => Rational::from_small(small),
            None => Rational {
                repr: Repr::Big {
                    num: BigInt::from_i128(v),
                    den: BigUint::one(),
                },
            },
        }
    }

    /// Numerator (signed, coprime with the denominator), materialized.
    pub fn numer(&self) -> BigInt {
        match &self.repr {
            Repr::Small(s) => BigInt::from_i128(s.num()),
            Repr::Big { num, .. } => num.clone(),
        }
    }

    /// Denominator (positive, coprime with the numerator), materialized.
    pub fn denom(&self) -> BigUint {
        match &self.repr {
            Repr::Small(s) => BigUint::from_u128(s.den() as u128),
            Repr::Big { den, .. } => den.clone(),
        }
    }

    /// Consume into `(numerator, denominator)` big parts.
    fn into_big_parts(self) -> (BigInt, BigUint) {
        match self.repr {
            Repr::Small(s) => (
                BigInt::from_i128(s.num()),
                BigUint::from_u128(s.den() as u128),
            ),
            Repr::Big { num, den } => (num, den),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(!Scalar::is_zero(self), "Rational::recip of zero");
        match &self.repr {
            Repr::Small(s) => Rational::from_small(s.recip()),
            Repr::Big { num, den } => Self::from_coprime_big(
                BigInt::with_sign(num.sign(), den.clone()),
                num.magnitude().clone(),
            ),
        }
    }

    /// Exact conversion from any finite `f64` (every finite double is a
    /// binary rational).
    ///
    /// # Panics
    /// Panics on NaN or infinite input.
    pub fn from_f64_exact(v: f64) -> Self {
        assert!(v.is_finite(), "Rational::from_f64_exact: non-finite input");
        if v == 0.0 {
            return Self::zero_();
        }
        let bits = v.to_bits();
        let neg = bits >> 63 == 1;
        let exp_field = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // value = mantissa · 2^exp
        let (mantissa, exp) = if exp_field == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp_field - 1075)
        };
        // Reduce by the power of two up front: the mantissa goes odd, so
        // the parts below are already coprime.
        let tz = mantissa.trailing_zeros() as i64;
        let (mantissa, exp) = (mantissa >> tz, exp + tz);
        let mant_bits = 64 - mantissa.leading_zeros() as i64;
        if exp >= 0 && mant_bits + exp <= 127 {
            let nm = (mantissa as u128) << exp;
            if let Some(small) = SmallRational::from_magnitudes(neg, nm, 1) {
                return Rational::from_small(small);
            }
        } else if exp < 0 && -exp <= 126 {
            let small = SmallRational::from_magnitudes(neg, mantissa as u128, 1u128 << (-exp))
                .expect("126-bit shifts fit the fixed limbs");
            return Rational::from_small(small);
        }
        // Heap fallback: |exp| too large for the fixed limbs (deep
        // subnormals) or the shifted mantissa past 127 bits.
        let mag = BigUint::from_u64(mantissa);
        let (num_mag, den) = if exp >= 0 {
            (mag.shl_bits(exp as u64), BigUint::one())
        } else {
            (mag, BigUint::one().shl_bits((-exp) as u64))
        };
        let sign = if neg { Sign::Neg } else { Sign::Pos };
        Self::from_coprime_big(BigInt::with_sign(sign, num_mag), den)
    }

    /// Approximate conversion to `f64`.
    ///
    /// On the fast path the machine quotient rounds once. On the heap
    /// path, numerator and denominator are truncated to their top 64 bits
    /// *independently* (so tiny values like `53-bit / 900-bit` keep full
    /// numerator precision) and the dropped power-of-two exponents are
    /// re-applied afterwards. Exact whenever the value is representable.
    pub fn approx_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small(s) => s.to_f64(),
            Repr::Big { num, den } => {
                if num.is_zero() {
                    return 0.0;
                }
                let nshift = num.magnitude().bits().saturating_sub(64);
                let dshift = den.bits().saturating_sub(64);
                let n = num.magnitude().shr_bits(nshift).to_f64();
                let d = den.shr_bits(dshift).to_f64();
                let e = nshift as i64 - dshift as i64;
                // q0 = n/d ∈ (2⁻⁶⁴, 2⁶⁴); the power-of-two rescale is exact
                // within the double range and saturates to 0/∞ outside it.
                let q = if e.unsigned_abs() > 2000 {
                    if e > 0 {
                        f64::INFINITY
                    } else {
                        0.0
                    }
                } else {
                    (n / d) * 2f64.powi(e as i32)
                };
                if num.is_negative() {
                    -q
                } else {
                    q
                }
            }
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    #[inline]
    fn add(self, other: Rational) -> Rational {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            if let Some(r) = a.checked_add(*b) {
                return Rational::from_small(r);
            }
        }
        // Heap lane with Knuth 4.5.1 pre-reduction: g₁ = gcd(b, d) is
        // large in accumulation chains (denominators share most factors),
        // so t = a·(d/g₁) + c·(b/g₁) stays near max(b, d) instead of b·d,
        // and the finishing gcd runs on g₁-sized operands.
        let (an, ad) = self.into_big_parts();
        let (bn, bd) = other.into_big_parts();
        if an.is_zero() {
            return Rational::from_coprime_big(bn, bd);
        }
        if bn.is_zero() {
            return Rational::from_coprime_big(an, ad);
        }
        let g1 = ad.gcd(&bd);
        if g1.is_one() {
            // Coprime denominators: ad + cb over bd is already reduced.
            let lhs = &an * &BigInt::from_biguint(bd.clone());
            let rhs = &bn * &BigInt::from_biguint(ad.clone());
            return Rational::from_coprime_big(&lhs + &rhs, ad.mul(&bd));
        }
        let (adp, _) = ad.div_rem(&g1); // b/g₁
        let (bdp, _) = bd.div_rem(&g1); // d/g₁
        let t = &(&an * &BigInt::from_biguint(bdp)) + &(&bn * &BigInt::from_biguint(adp.clone()));
        if t.is_zero() {
            return Self::zero_();
        }
        let g2 = t.magnitude().gcd(&g1);
        let (num_mag, _) = t.magnitude().div_rem(&g2);
        let (bd_red, _) = bd.div_rem(&g2);
        Rational::from_coprime_big(BigInt::with_sign(t.sign(), num_mag), adp.mul(&bd_red))
    }
}

impl Sub for Rational {
    type Output = Rational;
    #[inline]
    fn sub(self, other: Rational) -> Rational {
        self + (-other)
    }
}

impl Mul for Rational {
    type Output = Rational;
    #[inline]
    fn mul(self, other: Rational) -> Rational {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            if let Some(r) = a.checked_mul(*b) {
                return Rational::from_small(r);
            }
        }
        // Heap lane with cross pre-reduction: numerators are coprime with
        // their own denominators, so only the cross gcds g₁ = gcd(|a|, d)
        // and g₂ = gcd(|c|, b) can cancel — the reduced product is
        // coprime by construction, no post-normalization.
        let (an, ad) = self.into_big_parts();
        let (bn, bd) = other.into_big_parts();
        if an.is_zero() || bn.is_zero() {
            return Self::zero_();
        }
        let g1 = an.magnitude().gcd(&bd);
        let g2 = bn.magnitude().gcd(&ad);
        let (anr, _) = an.magnitude().div_rem(&g1);
        let (bnr, _) = bn.magnitude().div_rem(&g2);
        let (adr, _) = ad.div_rem(&g2);
        let (bdr, _) = bd.div_rem(&g1);
        Rational::from_coprime_big(
            BigInt::with_sign(an.sign().mul(bn.sign()), anr.mul(&bnr)),
            adr.mul(&bdr),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    #[inline]
    fn div(self, other: Rational) -> Rational {
        assert!(!Scalar::is_zero(&other), "Rational division by zero");
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            if let Some(r) = a.checked_div(*b) {
                return Rational::from_small(r);
            }
        }
        self * other.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    #[inline]
    fn neg(self) -> Rational {
        match self.repr {
            Repr::Small(s) => Rational::from_small(s.neg()),
            Repr::Big { num, den } => Rational {
                repr: Repr::Big { num: -num, den },
            },
        }
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a == b,
            (Repr::Big { num: an, den: ad }, Repr::Big { num: bn, den: bd }) => {
                an == bn && ad == bd
            }
            // Mixed representations: normalized forms are unique, so the
            // heap side equals the small side iff its parts fit the limbs
            // and match (canonical values never hit this arm; hand-built
            // non-canonical ones still compare correctly).
            (Repr::Small(s), Repr::Big { num, den }) | (Repr::Big { num, den }, Repr::Small(s)) => {
                match (num.magnitude().to_u128(), den.to_u128()) {
                    (Some(nm), Some(dm)) => {
                        SmallRational::from_magnitudes(num.is_negative(), nm, dm) == Some(*s)
                    }
                    _ => false,
                }
            }
        }
    }
}

impl Eq for Rational {}

/// Hash a magnitude as its normalized little-endian `u64` limbs
/// (length-prefixed), so both representations of the same value write the
/// same byte stream.
fn hash_limbs<H: Hasher>(limbs: &[u64], state: &mut H) {
    state.write_usize(limbs.len());
    for &l in limbs {
        state.write_u64(l);
    }
}

fn hash_mag_u128<H: Hasher>(v: u128, state: &mut H) {
    let lo = v as u64;
    let hi = (v >> 64) as u64;
    if hi != 0 {
        hash_limbs(&[lo, hi], state);
    } else if lo != 0 {
        hash_limbs(&[lo], state);
    } else {
        hash_limbs(&[], state);
    }
}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match &self.repr {
            Repr::Small(s) => {
                state.write_i8(s.num().signum() as i8);
                hash_mag_u128(s.num().unsigned_abs(), state);
                hash_mag_u128(s.den() as u128, state);
            }
            Repr::Big { num, den } => {
                let sign = match num.sign() {
                    Sign::Neg => -1i8,
                    Sign::Zero => 0,
                    Sign::Pos => 1,
                };
                state.write_i8(sign);
                hash_limbs(num.magnitude().limbs(), state);
                hash_limbs(den.limbs(), state);
            }
        }
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return a.cmp_small(b);
        }
        // a/b vs c/d  (b,d > 0)  ⇔  ad vs cb — heap cross products (at
        // least one side is past the limbs, so the products are big
        // anyway).
        let (an, ad) = self.clone().into_big_parts();
        let (bn, bd) = other.clone().into_big_parts();
        let lhs = &an * &BigInt::from_biguint(bd);
        let rhs = &bn * &BigInt::from_biguint(ad);
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(s) => {
                if s.den() == 1 {
                    write!(f, "{}", s.num())
                } else {
                    write!(f, "{}/{}", s.num(), s.den())
                }
            }
            Repr::Big { num, den } => {
                if den.is_one() {
                    write!(f, "{num}")
                } else {
                    write!(f, "{num}/{den}")
                }
            }
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl Scalar for Rational {
    #[inline(always)]
    fn zero() -> Self {
        Rational::zero_()
    }
    #[inline(always)]
    fn one() -> Self {
        Rational::from_small(SmallRational::one())
    }
    #[inline(always)]
    fn from_int(v: i64) -> Self {
        Rational::from_int(v)
    }
    /// Direct fixed-limb construction — no division, one binary GCD.
    #[inline(always)]
    fn from_ratio(n: i64, d: i64) -> Self {
        Rational::new(n, d)
    }
    fn from_f64(v: f64) -> Self {
        Rational::from_f64_exact(v)
    }
    fn to_f64(&self) -> f64 {
        self.approx_f64()
    }
    /// Rationals need no epsilon: the natural tolerance is exactly zero.
    fn default_tolerance() -> numkit::Tolerance<Self> {
        numkit::Tolerance::exact()
    }
    /// Every rational is finite by construction (denominators are nonzero).
    fn is_finite(&self) -> bool {
        true
    }
    fn total_cmp_s(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp(other)
    }
    #[inline(always)]
    fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small(s) => s.is_zero(),
            Repr::Big { num, .. } => num.is_zero(),
        }
    }
    #[inline(always)]
    fn is_positive(&self) -> bool {
        match &self.repr {
            Repr::Small(s) => s.num() > 0,
            Repr::Big { num, .. } => num.is_positive(),
        }
    }
    #[inline(always)]
    fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small(s) => s.num() < 0,
            Repr::Big { num, .. } => num.is_negative(),
        }
    }
    /// Exact floor via integer division (the trait default rounds through
    /// `f64`, which would be wrong for values like `3 − 2⁻²⁰⁰`). The fast
    /// path is one Euclidean machine division.
    fn floor_s(&self) -> Self {
        match &self.repr {
            Repr::Small(s) => Rational::from_int_i128(s.floor_i128()),
            Repr::Big { num, den } => {
                let den_int = BigInt::from_biguint(den.clone());
                let (q, r) = num.div_rem(&den_int);
                // `div_rem` truncates toward zero; floor shifts negatives
                // down.
                if num.is_negative() && !r.is_zero() {
                    Rational::from_coprime_big(q - BigInt::one(), BigUint::one())
                } else {
                    Rational::from_coprime_big(q, BigUint::one())
                }
            }
        }
    }
    /// Exact ceiling; one machine division on the fast path.
    fn ceil_s(&self) -> Self {
        match &self.repr {
            Repr::Small(s) => Rational::from_int_i128(s.ceil_i128()),
            Repr::Big { .. } => {
                let f = self.floor_s();
                if f == *self {
                    f
                } else {
                    f + Rational::from_int(1)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 7), Rational::from_int(0));
        assert_eq!(r(6, -4), r(-3, 2));
        assert_eq!(r(3, 2).to_string(), "3/2");
        assert_eq!(r(-3, 2).to_string(), "-3/2");
        assert_eq!(r(4, 2).to_string(), "2");
    }

    #[test]
    fn floor_ceil_round_are_exact() {
        assert_eq!(Scalar::floor_s(&r(7, 2)), Rational::from_int(3));
        assert_eq!(Scalar::ceil_s(&r(7, 2)), Rational::from_int(4));
        assert_eq!(Scalar::round_s(&r(7, 2)), Rational::from_int(4));
        assert_eq!(Scalar::floor_s(&r(-7, 2)), Rational::from_int(-4));
        assert_eq!(Scalar::ceil_s(&r(-7, 2)), Rational::from_int(-3));
        assert_eq!(Scalar::floor_s(&r(6, 2)), Rational::from_int(3));
        // A value f64 cannot tell apart from 3 still floors to 2.
        let tiny = Rational::from_parts(BigInt::one(), BigUint::one().shl_bits(200));
        let just_below = Rational::from_int(3) - tiny;
        assert_eq!(Scalar::floor_s(&just_below), Rational::from_int(2));
        assert_eq!(Scalar::ceil_s(&just_below), Rational::from_int(3));
    }

    #[test]
    fn small_values_stay_on_the_fast_path() {
        assert!(r(355, 113).as_small().is_some());
        assert!(!r(355, 113).is_promoted());
        let sum = r(1, 3) + r(1, 6);
        assert!(!sum.is_promoted());
        assert_eq!(sum, r(1, 2));
    }

    #[test]
    fn overflow_promotes_and_shrinking_demotes() {
        // 2¹²⁶ is small; squaring it must promote (2²⁵² needs the heap).
        let big = Rational::from_parts(BigInt::one(), BigUint::one().shl_bits(126));
        assert!(!big.is_promoted());
        let sq = big.clone() * big.clone();
        assert!(sq.is_promoted());
        // Dividing back across the boundary demotes again.
        let back = sq / big.clone();
        assert!(!back.is_promoted());
        assert_eq!(
            back,
            Rational::from_parts(BigInt::one(), BigUint::one().shl_bits(126))
        );
    }

    #[test]
    fn i64_min_edges() {
        // i64::MIN magnitudes are perfectly representable in the limbs.
        assert_eq!(Rational::new(i64::MIN, 1).to_string(), i64::MIN.to_string());
        assert_eq!(Rational::new(i64::MIN, i64::MIN), Rational::from_int(1));
        assert_eq!(Rational::new(i64::MIN, 2), Rational::new(i64::MIN / 2, 1));
        assert_eq!(
            Rational::new(1, i64::MIN) + Rational::new(1, i64::MIN),
            Rational::new(-1, i64::MAX / 2 + 1)
        );
        assert_eq!(
            -Rational::new(i64::MIN, 1),
            Rational::new(i64::MIN, 1).abs()
        );
    }

    #[test]
    fn i128_min_edges() {
        // 2¹²⁷ does not fit the signed limbs: must promote, not wrap.
        let m = Rational::from_int_i128(i128::MIN);
        assert!(m.is_promoted());
        assert_eq!(m.to_string(), i128::MIN.to_string());
        assert_eq!(-m.clone(), Rational::from_int_i128(i128::MIN).abs());
        // ... and reducing constructions demote.
        let half = Rational::from_ratio_i128(i128::MIN, 2);
        assert!(!half.is_promoted());
        assert_eq!(half, Rational::from_int_i128(i128::MIN / 2));
        assert_eq!(
            Rational::from_ratio_i128(i128::MIN, i128::MIN),
            Rational::from_int(1)
        );
        // 1 / 2¹²⁷: the *denominator* is past the limbs.
        let tiny = Rational::from_ratio_i128(1, i128::MIN);
        assert!(tiny.is_promoted());
        assert_eq!(
            tiny.clone() * Rational::from_int_i128(i128::MIN),
            Rational::from_int(1)
        );
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_i128_panics() {
        let _ = Rational::from_ratio_i128(5, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2) + r(-1, 2), Rational::from_int(0));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = r(1, 2) / Rational::from_int(0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_promoted_then_demoted_zero_panics() {
        // A zero produced on the heap lane (huge − huge) demotes to the
        // canonical 0/1; dividing by it must still hit the guard.
        let huge = Rational::from_parts(BigInt::one(), BigUint::one()).recip()
            * Rational::from_parts(
                BigInt::with_sign(Sign::Pos, BigUint::one().shl_bits(300)),
                BigUint::one(),
            );
        let zero = huge.clone() - huge;
        assert!(!zero.is_promoted());
        assert!(Scalar::is_zero(&zero));
        let _ = r(1, 2) / zero;
    }

    #[test]
    fn promoted_then_demoted_zero_is_canonical() {
        let huge = Rational::from_parts(
            BigInt::with_sign(Sign::Pos, BigUint::one().shl_bits(200)),
            BigUint::from_u64(3),
        );
        let zero = huge.clone() - huge;
        assert!(!zero.is_promoted());
        assert_eq!(zero, <Rational as Scalar>::zero());
        assert!(!Scalar::is_positive(&zero) && !Scalar::is_negative(&zero));
        assert_eq!(zero.to_string(), "0");
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < r(1, 100));
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn from_f64_exact_simple() {
        assert_eq!(Rational::from_f64_exact(0.5), r(1, 2));
        assert_eq!(Rational::from_f64_exact(-0.25), r(-1, 4));
        assert_eq!(Rational::from_f64_exact(3.0), Rational::from_int(3));
        assert_eq!(Rational::from_f64_exact(0.0), Rational::from_int(0));
        // 0.1 is NOT 1/10 in binary.
        assert_ne!(Rational::from_f64_exact(0.1), r(1, 10));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_f64_nan_panics() {
        let _ = Rational::from_f64_exact(f64::NAN);
    }

    #[test]
    fn approx_f64_roundtrip() {
        for v in [
            0.0,
            1.5,
            -2.25,
            1e-30,
            123456.789,
            -1e30,
            1e300,
            -1e-300,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal: deep in heap-denominator land
            f64::MAX,
        ] {
            let q = Rational::from_f64_exact(v);
            assert_eq!(q.approx_f64(), v, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
        // Promoted values invert without leaving the heap lane wrongly.
        let big = Rational::from_parts(BigInt::one(), BigUint::one().shl_bits(200));
        assert!(big.is_promoted());
        let inv = big.recip();
        assert!(inv.is_promoted());
        assert_eq!(inv.recip(), big);
    }

    #[test]
    fn scalar_impl() {
        assert!(<Rational as Scalar>::zero().is_zero());
        assert_eq!(<Rational as Scalar>::one(), Rational::from_int(1));
        assert_eq!(<Rational as Scalar>::from_int(-7), Rational::from_int(-7));
        assert_eq!(<Rational as Scalar>::from_ratio(-7, 14), r(-1, 2));
        assert!(r(1, 3).is_positive());
        assert!(r(-1, 3).is_negative());
        assert_eq!(r(-1, 2).abs(), r(1, 2));
    }

    #[test]
    fn grows_beyond_machine_precision() {
        // Σ 1/k! style growth past the fixed limbs: denominators explode
        // but stay exact (35! ≈ 2¹³², which forces the heap lane).
        let mut acc = Rational::from_int(0);
        let mut den = Rational::from_int(1);
        for k in 1..=35i64 {
            den = den * Rational::from_int(k);
            acc = acc + den.clone().recip();
        }
        // e − 1 ≈ 1.718281828…
        assert!((acc.approx_f64() - (std::f64::consts::E - 1.0)).abs() < 1e-12);
        assert!(acc.denom().bits() > 128, "should exceed the fixed limbs");
        assert!(acc.is_promoted());
    }

    proptest! {
        #[test]
        fn prop_field_axioms(a in -1000i64..1000, b in 1i64..1000,
                             c in -1000i64..1000, d in 1i64..1000,
                             e in -1000i64..1000, f in 1i64..1000) {
            let x = r(a, b);
            let y = r(c, d);
            let z = r(e, f);
            // Commutativity and associativity.
            prop_assert_eq!(x.clone() + y.clone(), y.clone() + x.clone());
            prop_assert_eq!(x.clone() * y.clone(), y.clone() * x.clone());
            prop_assert_eq!((x.clone() + y.clone()) + z.clone(), x.clone() + (y.clone() + z.clone()));
            prop_assert_eq!((x.clone() * y.clone()) * z.clone(), x.clone() * (y.clone() * z.clone()));
            // Distributivity.
            prop_assert_eq!(x.clone() * (y.clone() + z.clone()),
                            x.clone() * y.clone() + x.clone() * z.clone());
            // Inverses.
            prop_assert_eq!(x.clone() + (-x.clone()), Rational::from_int(0));
            if !Scalar::is_zero(&x) {
                prop_assert_eq!(x.clone() * x.recip(), Rational::from_int(1));
            }
        }

        #[test]
        fn prop_from_f64_roundtrip(v in proptest::num::f64::NORMAL) {
            let q = Rational::from_f64_exact(v);
            prop_assert_eq!(q.approx_f64(), v);
        }

        #[test]
        fn prop_cmp_consistent_with_f64(a in -10_000i64..10_000, b in 1i64..10_000,
                                        c in -10_000i64..10_000, d in 1i64..10_000) {
            let exact = r(a, b).cmp(&r(c, d));
            let approx = (a as f64 / b as f64).partial_cmp(&(c as f64 / d as f64)).unwrap();
            // f64 on values of this size is exact enough to agree except at
            // equality boundaries, where f64 may mis-tie; accept both.
            if exact != Ordering::Equal {
                prop_assert!(approx == exact || approx == Ordering::Equal);
            }
        }
    }
}
