//! Normalized rationals and their [`numkit::Scalar`] implementation.

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use numkit::Scalar;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den`.
///
/// Invariants: `den > 0`, `gcd(|num|, den) = 1`, and zero is `0/1`.
///
/// ```
/// use bigratio::Rational;
/// let third = Rational::new(1, 3);
/// let sum = third.clone() + third.clone() + third;
/// assert_eq!(sum, Rational::from_int(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Rational {
    /// `n / d` from machine integers.
    ///
    /// # Panics
    /// Panics when `d == 0`.
    pub fn new(n: i64, d: i64) -> Self {
        assert!(d != 0, "Rational::new: zero denominator");
        let sign_flip = d < 0;
        let num = if sign_flip {
            -BigInt::from_i64(n)
        } else {
            BigInt::from_i64(n)
        };
        Self::from_parts(num, BigUint::from_u64(d.unsigned_abs()))
    }

    /// From big parts, normalizing.
    ///
    /// # Panics
    /// Panics when `den` is zero.
    pub fn from_parts(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "Rational::from_parts: zero denominator");
        if num.is_zero() {
            return Self::zero_();
        }
        let g = num.magnitude().gcd(&den);
        let (num_mag, _) = num.magnitude().div_rem(&g);
        let (den, _) = den.div_rem(&g);
        Rational {
            num: BigInt::with_sign(num.sign(), num_mag),
            den,
        }
    }

    fn zero_() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// Exact integer.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: BigInt::from_i64(v),
            den: BigUint::one(),
        }
    }

    /// Numerator (signed, coprime with the denominator).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (positive, coprime with the numerator).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(!self.num.is_zero(), "Rational::recip of zero");
        Rational {
            num: BigInt::with_sign(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// Exact conversion from any finite `f64` (every finite double is a
    /// binary rational).
    ///
    /// # Panics
    /// Panics on NaN or infinite input.
    pub fn from_f64_exact(v: f64) -> Self {
        assert!(v.is_finite(), "Rational::from_f64_exact: non-finite input");
        if v == 0.0 {
            return Self::zero_();
        }
        let bits = v.to_bits();
        let neg = bits >> 63 == 1;
        let exp_field = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // value = mantissa · 2^exp
        let (mantissa, exp) = if exp_field == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp_field - 1075)
        };
        let mag = BigUint::from_u64(mantissa);
        let (num_mag, den) = if exp >= 0 {
            (mag.shl_bits(exp as u64), BigUint::one())
        } else {
            (mag, BigUint::one().shl_bits((-exp) as u64))
        };
        let sign = if neg { Sign::Neg } else { Sign::Pos };
        Self::from_parts(BigInt::with_sign(sign, num_mag), den)
    }

    /// Approximate conversion to `f64`.
    ///
    /// Numerator and denominator are truncated to their top 64 bits
    /// *independently* (so tiny values like `53-bit / 900-bit` keep full
    /// numerator precision) and the dropped power-of-two exponents are
    /// re-applied afterwards. Exact whenever the value is representable.
    pub fn approx_f64(&self) -> f64 {
        if self.num.is_zero() {
            return 0.0;
        }
        let nshift = self.num.magnitude().bits().saturating_sub(64);
        let dshift = self.den.bits().saturating_sub(64);
        let n = self.num.magnitude().shr_bits(nshift).to_f64();
        let d = self.den.shr_bits(dshift).to_f64();
        let e = nshift as i64 - dshift as i64;
        // q0 = n/d ∈ (2⁻⁶⁴, 2⁶⁴); the power-of-two rescale is exact within
        // the double range and saturates to 0/∞ outside it.
        let q = if e.unsigned_abs() > 2000 {
            if e > 0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            (n / d) * 2f64.powi(e as i32)
        };
        if self.num.is_negative() {
            -q
        } else {
            q
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, other: Rational) -> Rational {
        // a/b + c/d = (ad + cb) / bd
        let ad = &self.num * &BigInt::from_biguint(other.den.clone());
        let cb = &other.num * &BigInt::from_biguint(self.den.clone());
        Rational::from_parts(&ad + &cb, self.den.mul(&other.den))
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, other: Rational) -> Rational {
        self + (-other)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, other: Rational) -> Rational {
        Rational::from_parts(&self.num * &other.num, self.den.mul(&other.den))
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, other: Rational) -> Rational {
        assert!(!other.num.is_zero(), "Rational division by zero");
        self * other.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b,d > 0)  ⇔  ad vs cb
        let ad = &self.num * &BigInt::from_biguint(other.den.clone());
        let cb = &other.num * &BigInt::from_biguint(self.den.clone());
        ad.cmp(&cb)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Rational::zero_()
    }
    fn one() -> Self {
        Rational::from_int(1)
    }
    fn from_int(v: i64) -> Self {
        Rational::from_int(v)
    }
    fn from_f64(v: f64) -> Self {
        Rational::from_f64_exact(v)
    }
    fn to_f64(&self) -> f64 {
        self.approx_f64()
    }
    /// Rationals need no epsilon: the natural tolerance is exactly zero.
    fn default_tolerance() -> numkit::Tolerance<Self> {
        numkit::Tolerance::exact()
    }
    /// Every rational is finite by construction (denominators are nonzero).
    fn is_finite(&self) -> bool {
        true
    }
    fn total_cmp_s(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp(other)
    }
    fn is_zero(&self) -> bool {
        self.num.is_zero()
    }
    fn is_positive(&self) -> bool {
        self.num.is_positive()
    }
    fn is_negative(&self) -> bool {
        self.num.is_negative()
    }
    /// Exact floor via integer division (the trait default rounds through
    /// `f64`, which would be wrong for values like `3 − 2⁻²⁰⁰`).
    fn floor_s(&self) -> Self {
        let den = BigInt::from_biguint(self.den.clone());
        let (q, r) = self.num.div_rem(&den);
        // `div_rem` truncates toward zero; floor shifts negatives down.
        if self.num.is_negative() && !r.is_zero() {
            Rational {
                num: q - BigInt::one(),
                den: BigUint::one(),
            }
        } else {
            Rational {
                num: q,
                den: BigUint::one(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 7), Rational::from_int(0));
        assert_eq!(r(6, -4), r(-3, 2));
        assert_eq!(r(3, 2).to_string(), "3/2");
        assert_eq!(r(-3, 2).to_string(), "-3/2");
        assert_eq!(r(4, 2).to_string(), "2");
    }

    #[test]
    fn floor_ceil_round_are_exact() {
        assert_eq!(Scalar::floor_s(&r(7, 2)), Rational::from_int(3));
        assert_eq!(Scalar::ceil_s(&r(7, 2)), Rational::from_int(4));
        assert_eq!(Scalar::round_s(&r(7, 2)), Rational::from_int(4));
        assert_eq!(Scalar::floor_s(&r(-7, 2)), Rational::from_int(-4));
        assert_eq!(Scalar::ceil_s(&r(-7, 2)), Rational::from_int(-3));
        assert_eq!(Scalar::floor_s(&r(6, 2)), Rational::from_int(3));
        // A value f64 cannot tell apart from 3 still floors to 2.
        let tiny = Rational::from_parts(BigInt::one(), BigUint::one().shl_bits(200));
        let just_below = Rational::from_int(3) - tiny;
        assert_eq!(Scalar::floor_s(&just_below), Rational::from_int(2));
        assert_eq!(Scalar::ceil_s(&just_below), Rational::from_int(3));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2) + r(-1, 2), Rational::from_int(0));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = r(1, 2) / Rational::from_int(0);
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < r(1, 100));
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn from_f64_exact_simple() {
        assert_eq!(Rational::from_f64_exact(0.5), r(1, 2));
        assert_eq!(Rational::from_f64_exact(-0.25), r(-1, 4));
        assert_eq!(Rational::from_f64_exact(3.0), Rational::from_int(3));
        assert_eq!(Rational::from_f64_exact(0.0), Rational::from_int(0));
        // 0.1 is NOT 1/10 in binary.
        assert_ne!(Rational::from_f64_exact(0.1), r(1, 10));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_f64_nan_panics() {
        let _ = Rational::from_f64_exact(f64::NAN);
    }

    #[test]
    fn approx_f64_roundtrip() {
        for v in [0.0, 1.5, -2.25, 1e-30, 123456.789, -1e30] {
            let q = Rational::from_f64_exact(v);
            assert_eq!(q.approx_f64(), v, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
    }

    #[test]
    fn scalar_impl() {
        assert!(<Rational as Scalar>::zero().is_zero());
        assert_eq!(<Rational as Scalar>::one(), Rational::from_int(1));
        assert_eq!(<Rational as Scalar>::from_int(-7), Rational::from_int(-7));
        assert!(r(1, 3).is_positive());
        assert!(r(-1, 3).is_negative());
        assert_eq!(r(-1, 2).abs(), r(1, 2));
    }

    #[test]
    fn grows_beyond_machine_precision() {
        // Σ 1/k! style growth: denominators explode but stay exact.
        let mut acc = Rational::from_int(0);
        let mut den = Rational::from_int(1);
        for k in 1..=25i64 {
            den = den * Rational::from_int(k);
            acc = acc + den.clone().recip();
        }
        // e − 1 ≈ 1.718281828…
        assert!((acc.approx_f64() - (std::f64::consts::E - 1.0)).abs() < 1e-12);
        assert!(acc.denom().bits() > 64, "should exceed one limb");
    }

    proptest! {
        #[test]
        fn prop_field_axioms(a in -1000i64..1000, b in 1i64..1000,
                             c in -1000i64..1000, d in 1i64..1000,
                             e in -1000i64..1000, f in 1i64..1000) {
            let x = r(a, b);
            let y = r(c, d);
            let z = r(e, f);
            // Commutativity and associativity.
            prop_assert_eq!(x.clone() + y.clone(), y.clone() + x.clone());
            prop_assert_eq!(x.clone() * y.clone(), y.clone() * x.clone());
            prop_assert_eq!((x.clone() + y.clone()) + z.clone(), x.clone() + (y.clone() + z.clone()));
            prop_assert_eq!((x.clone() * y.clone()) * z.clone(), x.clone() * (y.clone() * z.clone()));
            // Distributivity.
            prop_assert_eq!(x.clone() * (y.clone() + z.clone()),
                            x.clone() * y.clone() + x.clone() * z.clone());
            // Inverses.
            prop_assert_eq!(x.clone() + (-x.clone()), Rational::from_int(0));
            if !Scalar::is_zero(&x) {
                prop_assert_eq!(x.clone() * x.recip(), Rational::from_int(1));
            }
        }

        #[test]
        fn prop_from_f64_roundtrip(v in proptest::num::f64::NORMAL) {
            let q = Rational::from_f64_exact(v);
            prop_assert_eq!(q.approx_f64(), v);
        }

        #[test]
        fn prop_cmp_consistent_with_f64(a in -10_000i64..10_000, b in 1i64..10_000,
                                        c in -10_000i64..10_000, d in 1i64..10_000) {
            let exact = r(a, b).cmp(&r(c, d));
            let approx = (a as f64 / b as f64).partial_cmp(&(c as f64 / d as f64)).unwrap();
            // f64 on values of this size is exact enough to agree except at
            // equality boundaries, where f64 may mis-tie; accept both.
            if exact != Ordering::Equal {
                prop_assert!(approx == exact || approx == Ordering::Equal);
            }
        }
    }
}
