//! Arbitrary-precision rational arithmetic, from scratch.
//!
//! The IPDPS 2012 paper verified Conjecture 13 (order-reversal invariance of
//! greedy schedules on homogeneous instances) *symbolically* with Sage for up
//! to 15 tasks. This workspace re-does that verification in Rust, which
//! requires exact arithmetic: the greedy recurrence
//! `C_i = C_{i−1} + (1 − (1−δ_{i−1})(C_{i−1}−C_{i−2}))/δ_i`
//! produces rationals whose denominators grow as products of the `δ`
//! denominators — hundreds of bits by `n = 15`, far beyond `f64`.
//!
//! Layered as:
//! * [`BigUint`] — magnitude arithmetic on little-endian `u64` limbs
//!   (schoolbook multiply, Knuth Algorithm D division);
//! * [`BigInt`] — sign + magnitude;
//! * [`Rational`] — normalized fraction with positive denominator,
//!   implementing [`numkit::Scalar`] so every generic algorithm in the stack
//!   can run exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod biguint;
pub mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use rational::Rational;
