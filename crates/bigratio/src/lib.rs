//! Arbitrary-precision rational arithmetic, from scratch.
//!
//! The IPDPS 2012 paper verified Conjecture 13 (order-reversal invariance of
//! greedy schedules on homogeneous instances) *symbolically* with Sage for up
//! to 15 tasks. This workspace re-does that verification in Rust, which
//! requires exact arithmetic: the greedy recurrence
//! `C_i = C_{i−1} + (1 − (1−δ_{i−1})(C_{i−1}−C_{i−2}))/δ_i`
//! produces rationals whose denominators grow as products of the `δ`
//! denominators — hundreds of bits by `n = 15`, far beyond `f64`.
//!
//! Layered as:
//! * [`BigUint`] — magnitude arithmetic on little-endian `u64` limbs
//!   (schoolbook multiply, Knuth Algorithm D division);
//! * [`BigInt`] — sign + magnitude;
//! * [`SmallRational`] — fixed-limb (`i128`) rationals with binary-GCD
//!   normalization and overflow-*checked* arithmetic: the stack-only fast
//!   path;
//! * [`Rational`] — normalized fraction with positive denominator, stored
//!   inline as a [`SmallRational`] whenever the reduced parts fit and
//!   promoted to the heap pair only past the `i128` boundary (results that
//!   shrink demote back). Implements [`numkit::Scalar`] so every generic
//!   algorithm in the stack can run exactly — and, since the fast path,
//!   cheaply.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod biguint;
pub mod rational;
pub mod small;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use rational::Rational;
pub use small::SmallRational;
