//! Regression surface for the two-tier `Rational` representation.
//!
//! Three operand regimes per operation:
//! * `small` — both operands on the fixed-limb fast path and the result
//!   stays there (the steady state of every exact scheduling run);
//! * `boundary` — operands near the `i128` limit whose products straddle
//!   the promotion boundary (add promotes, gcd still machine-word);
//! * `promoted` — both operands on the heap lane (multi-hundred-bit
//!   parts), the pre-existing slow path kept honest.

use bigratio::{small::gcd_u128, BigInt, BigUint, Rational};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cmp::Ordering;
use std::hint::black_box;

/// Deterministic stream of small rationals with denominators ≤ 64
/// (quantized workloads — the realistic exact-lane operands).
fn small_operands() -> Vec<Rational> {
    (0..64u64)
        .map(|i| {
            let n = (i as i64 * 37 + 11) % 1000 - 500;
            let d = (i as i64 * 13) % 63 + 1;
            Rational::new(if n == 0 { 1 } else { n }, d)
        })
        .collect()
}

/// Operands within a couple of bits of the `i128` magnitude limit:
/// additions and multiplications promote, comparisons stay on the
/// 256-bit widening path.
fn boundary_operands() -> Vec<Rational> {
    (0..64u64)
        .map(|i| {
            let num = BigInt::from_i128((i128::MAX >> 2) - i as i128 * 9973);
            let den = BigUint::from_u128((u128::MAX >> 3) - i as u128 * 7919);
            Rational::from_parts(num, den)
        })
        .collect()
}

/// Heap-lane operands: ~300-bit numerators and denominators.
fn promoted_operands() -> Vec<Rational> {
    (0..64u64)
        .map(|i| {
            let num = BigInt::from_biguint(
                BigUint::one()
                    .shl_bits(300)
                    .add(&BigUint::from_u64(i * 2 + 1)),
            );
            let den = BigUint::one()
                .shl_bits(290)
                .add(&BigUint::from_u64(i * 6 + 3));
            Rational::from_parts(num, den)
        })
        .collect()
}

fn bench_regime(c: &mut Criterion, name: &str, ops: &[Rational]) {
    let mut g = c.benchmark_group(format!("bigratio/rational-{name}"));
    g.sample_size(20);
    g.bench_function("add", |b| {
        b.iter(|| {
            let mut acc = Rational::from_int(0);
            for x in ops {
                acc = acc + black_box(x.clone());
            }
            black_box(acc)
        })
    });
    g.bench_function("mul", |b| {
        b.iter(|| {
            let mut acc = Rational::from_int(1);
            for x in ops {
                acc = black_box(x.clone()) * black_box(x.clone());
                acc = black_box(acc);
            }
            acc
        })
    });
    g.bench_function("cmp", |b| {
        b.iter(|| {
            let mut lt = 0usize;
            for w in ops.windows(2) {
                if w[0].cmp(&w[1]) == Ordering::Less {
                    lt += 1;
                }
            }
            black_box(lt)
        })
    });
    g.finish();
}

fn bench_gcd(c: &mut Criterion) {
    let mut g = c.benchmark_group("bigratio/gcd");
    g.sample_size(20);
    // Machine-word binary GCD (normalization kernel of the fast path).
    g.bench_function("binary-u128", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for i in 1..64u128 {
                acc ^= gcd_u128(
                    black_box((u128::MAX >> 2) - i * 104729),
                    black_box(i * 7_919_919 + 3),
                );
            }
            black_box(acc)
        })
    });
    // Heap Euclid on ~300-bit operands (the promoted lane's kernel).
    let a = BigUint::one()
        .shl_bits(300)
        .add(&BigUint::from_u64(123_457));
    let b_ = BigUint::one()
        .shl_bits(299)
        .add(&BigUint::from_u64(987_653));
    g.bench_function("euclid-300bit", |bch| {
        bch.iter(|| black_box(black_box(&a).gcd(black_box(&b_))))
    });
    g.finish();
}

fn bench_all(c: &mut Criterion) {
    bench_regime(c, "small", &small_operands());
    bench_regime(c, "boundary", &boundary_operands());
    bench_regime(c, "promoted", &promoted_operands());
    bench_gcd(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
