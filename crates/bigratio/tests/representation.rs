//! Cross-representation agreement: the fixed-limb fast path and the heap
//! lane must be *observably identical* — same results, same ordering, same
//! hashes — with promotion/demotion visible only through
//! `Rational::is_promoted`.

use bigratio::{BigInt, BigUint, Rational};
use numkit::Scalar;
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn hash_of(r: &Rational) -> u64 {
    let mut h = DefaultHasher::new();
    r.hash(&mut h);
    h.finish()
}

/// The same value built on the heap lane, demotion suppressed.
fn as_big(n: i64, d: i64) -> Rational {
    let sign_flip = d < 0;
    let num = BigInt::from_i64(n);
    let num = if sign_flip { -num } else { num };
    Rational::from_parts_nodemote(num, BigUint::from_u64(d.unsigned_abs()))
}

proptest! {
    /// Eq, Ord and Hash agree across representations of the same value.
    #[test]
    fn hash_eq_consistent_across_representations(n in any::<i64>(), d in 1i64..) {
        let small = Rational::new(n, d);
        let big = as_big(n, d);
        prop_assert!(!small.is_promoted());
        prop_assert!(big.is_promoted() || n == 0); // zero canonicalizes in from_parts_nodemote's gcd? keep the Eq checks regardless
        prop_assert_eq!(small.clone(), big.clone());
        prop_assert_eq!(big.clone(), small.clone());
        prop_assert_eq!(small.cmp(&big), std::cmp::Ordering::Equal);
        prop_assert_eq!(hash_of(&small), hash_of(&big));
    }

    /// A randomized operand stream produces bit-identical results whether
    /// the inputs enter on the fast path or the (forced) heap lane.
    #[test]
    fn operand_streams_agree(ops in proptest::collection::vec(
        (0u8..4, -10_000i64..10_000, 1i64..10_000), 1..40))
    {
        let mut fast = Rational::from_int(1);
        let mut slow = Rational::from_parts_nodemote(BigInt::one(), BigUint::one());
        for (op, n, d) in ops {
            let x_fast = Rational::new(n, d);
            let x_slow = as_big(n, d);
            match op {
                0 => { fast = fast + x_fast; slow = slow + x_slow; }
                1 => { fast = fast - x_fast; slow = slow - x_slow; }
                2 => { fast = fast * x_fast; slow = slow * x_slow; }
                _ => {
                    if !Scalar::is_zero(&x_fast) {
                        fast = fast / x_fast;
                        slow = slow / x_slow;
                    }
                }
            }
            prop_assert_eq!(fast.clone(), slow.clone());
            prop_assert_eq!(hash_of(&fast), hash_of(&slow));
            prop_assert_eq!(fast.numer(), slow.numer());
            prop_assert_eq!(fast.denom(), slow.denom());
        }
    }

    /// Construction promotes exactly when the reduced parts exceed the
    /// fixed limbs, and arithmetic across the boundary round-trips.
    #[test]
    fn promotion_boundary_is_exact(shift in 100u64..140, k in 1u64..1000) {
        // 2^shift / k reduces to odd-k denominator times a power of two;
        // the reduced numerator magnitude decides the representation.
        let v = Rational::from_parts(
            BigInt::from_biguint(BigUint::one().shl_bits(shift)),
            BigUint::from_u64(k),
        );
        let expect_small = v.numer().magnitude().bits() <= 127 && v.denom().bits() <= 127;
        prop_assert_eq!(!v.is_promoted(), expect_small);

        // Crossing the boundary by squaring, then returning by division,
        // lands back on the fast path with the identical value.
        let sq = v.clone() * v.clone();
        let back = sq / v.clone();
        prop_assert_eq!(back.clone(), v.clone());
        prop_assert_eq!(back.is_promoted(), v.is_promoted());
    }

    /// floor/ceil/round agree between the fast path and the heap lane.
    #[test]
    fn rounding_agrees_across_representations(n in -100_000i64..100_000, d in 1i64..1000) {
        let small = Rational::new(n, d);
        let big = as_big(n, d);
        prop_assert_eq!(small.floor_s(), big.floor_s());
        prop_assert_eq!(small.ceil_s(), big.ceil_s());
        prop_assert_eq!(small.round_s(), big.round_s());
        prop_assert_eq!(small.approx_f64(), big.approx_f64());
    }
}

#[test]
fn boundary_straddling_exact_values() {
    // i128::MAX as a rational is the largest fast-path integer.
    let top = Rational::from_int_i128(i128::MAX);
    assert!(!top.is_promoted());
    // One more promotes; subtracting one demotes back.
    let over = top.clone() + Rational::from_int(1);
    assert!(over.is_promoted());
    let back = over - Rational::from_int(1);
    assert!(!back.is_promoted());
    assert_eq!(back, top);

    // Same straddle on the denominator side: 1/i128::MAX is small,
    // halving it promotes (den 2·(2¹²⁷−1) > i128::MAX), doubling demotes.
    let tiny = Rational::from_int_i128(i128::MAX).recip();
    assert!(!tiny.is_promoted());
    let half = tiny.clone() / Rational::from_int(2);
    assert!(half.is_promoted());
    let dbl = half * Rational::from_int(2);
    assert!(!dbl.is_promoted());
    assert_eq!(dbl, tiny);
}

#[test]
fn hash_eq_for_promoted_values() {
    use std::collections::HashSet;
    // Promoted values participate in hash sets alongside demoted equals.
    let big = Rational::from_parts(
        BigInt::from_biguint(BigUint::one().shl_bits(200)),
        BigUint::from_u64(3),
    );
    let mut set = HashSet::new();
    set.insert(big.clone());
    assert!(set.contains(&big));
    // The same value reconstructed independently hashes identically.
    let big2 = Rational::from_parts(
        BigInt::from_biguint(BigUint::one().shl_bits(201)),
        BigUint::from_u64(6),
    );
    assert!(set.contains(&big2));
    assert_eq!(set.len(), 1);
}
