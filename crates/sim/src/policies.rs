//! Non-clairvoyant allocation policies.
//!
//! * [`WdeqPolicy`] — Algorithm 1, the paper's 2-approximation: weighted
//!   equipartition with cap clamping and surplus redistribution.
//! * [`DeqPolicy`] — the unweighted special case (Deng et al.), Table I
//!   row 3.
//! * [`UncappedSharePolicy`] — proportional share *without* surplus
//!   redistribution: what a naive weighted-round-robin does; used as an
//!   ablation to show the redistribution step matters.
//! * [`PriorityPolicy`] — greedy weight-priority list allocation: heaviest
//!   task takes `δ`, remainder cascades. A natural but non-fair baseline
//!   whose worst case is unboundedly bad for the weighted objective.

use crate::engine::{OnlinePolicy, TaskView};
use malleable_core::algos::wdeq::wdeq_allocation;

/// Algorithm 1 (WDEQ) as an online policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct WdeqPolicy;

impl OnlinePolicy for WdeqPolicy {
    fn name(&self) -> &'static str {
        "wdeq"
    }

    fn allocate(&mut self, _now: f64, active: &[TaskView], p: f64) -> Vec<f64> {
        let entries: Vec<(f64, f64)> = active.iter().map(|v| (v.weight, v.delta)).collect();
        wdeq_allocation(&entries, p)
    }
}

/// DEQ: dynamic equipartition ignoring weights (all tasks count 1).
#[derive(Debug, Default, Clone, Copy)]
pub struct DeqPolicy;

impl OnlinePolicy for DeqPolicy {
    fn name(&self) -> &'static str {
        "deq"
    }

    fn allocate(&mut self, _now: f64, active: &[TaskView], p: f64) -> Vec<f64> {
        let entries: Vec<(f64, f64)> = active.iter().map(|v| (1.0, v.delta)).collect();
        wdeq_allocation(&entries, p)
    }
}

/// Proportional weighted share clamped at `δᵢ`, **without** redistributing
/// the clamped surplus. Wastes capacity whenever a cap binds.
#[derive(Debug, Default, Clone, Copy)]
pub struct UncappedSharePolicy;

impl OnlinePolicy for UncappedSharePolicy {
    fn name(&self) -> &'static str {
        "share-no-redistribution"
    }

    fn allocate(&mut self, _now: f64, active: &[TaskView], p: f64) -> Vec<f64> {
        let w: f64 = active.iter().map(|v| v.weight).sum();
        if w <= 0.0 {
            return vec![0.0; active.len()];
        }
        active
            .iter()
            .map(|v| (v.weight * p / w).min(v.delta))
            .collect()
    }
}

/// Weight-priority list allocation: active tasks sorted by weight
/// (descending, ties by id), each takes `min(δ, remaining capacity)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PriorityPolicy;

impl OnlinePolicy for PriorityPolicy {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn allocate(&mut self, _now: f64, active: &[TaskView], p: f64) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..active.len()).collect();
        idx.sort_by(|&a, &b| {
            active[b]
                .weight
                .total_cmp(&active[a].weight)
                .then(active[a].id.0.cmp(&active[b].id.0))
        });
        let mut rates = vec![0.0; active.len()];
        let mut left = p;
        for i in idx {
            let r = active[i].delta.min(left);
            rates[i] = r;
            left -= r;
            if left <= 0.0 {
                break;
            }
        }
        rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use malleable_core::algos::wdeq::wdeq_schedule;
    use malleable_core::instance::Instance;

    fn inst() -> Instance {
        Instance::builder(4.0)
            .task(8.0, 1.0, 2.0)
            .task(4.0, 2.0, 4.0)
            .task(2.0, 4.0, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn online_wdeq_matches_clairvoyant_replay() {
        let i = inst();
        let online = simulate(&i, &mut WdeqPolicy).unwrap();
        let offline = wdeq_schedule(&i);
        for (a, b) in online.schedule.completions.iter().zip(&offline.completions) {
            assert!((a - b).abs() < 1e-9, "online {a} vs offline {b}");
        }
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let i = inst();
        let policies: Vec<Box<dyn crate::engine::OnlinePolicy>> = vec![
            Box::new(WdeqPolicy),
            Box::new(DeqPolicy),
            Box::new(UncappedSharePolicy),
            Box::new(PriorityPolicy),
        ];
        for mut p in policies {
            let r = simulate(&i, p.as_mut()).unwrap();
            r.schedule
                .validate(&i)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        }
    }

    #[test]
    fn deq_ignores_weights() {
        // Same caps/volumes, very different weights: DEQ treats them alike.
        let i = Instance::builder(2.0)
            .task(1.0, 100.0, 1.0)
            .task(1.0, 0.01, 1.0)
            .build()
            .unwrap();
        let r = simulate(&i, &mut DeqPolicy).unwrap();
        assert!((r.schedule.completions[0] - r.schedule.completions[1]).abs() < 1e-9);
    }

    #[test]
    fn redistribution_beats_naive_share() {
        // T0's cap binds hard; WDEQ hands the surplus to T1, the naive
        // share wastes it.
        let i = Instance::builder(10.0)
            .task(1.0, 9.0, 1.0) // heavy but capped at 1
            .task(9.0, 1.0, 10.0)
            .build()
            .unwrap();
        let wdeq = simulate(&i, &mut WdeqPolicy).unwrap().cost(&i);
        let naive = simulate(&i, &mut UncappedSharePolicy).unwrap().cost(&i);
        assert!(
            wdeq < naive - 1e-9,
            "redistribution should help: wdeq {wdeq} vs naive {naive}"
        );
    }

    #[test]
    fn priority_serves_heaviest_first() {
        let i = Instance::builder(1.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 5.0, 1.0)
            .build()
            .unwrap();
        let r = simulate(&i, &mut PriorityPolicy).unwrap();
        assert!((r.schedule.completions[1] - 1.0).abs() < 1e-9);
        assert!((r.schedule.completions[0] - 2.0).abs() < 1e-9);
    }
}
