//! Non-clairvoyant allocation policies — thin adapters over the canonical
//! rules in [`malleable_core::policy::rules`].
//!
//! The algorithm logic (Algorithm 1's equipartition, its ablations, the
//! priority baseline) lives exactly once, in the core policy layer; here
//! each rule is wrapped behind the engine's [`OnlinePolicy`] interface so
//! it runs under the genuinely non-clairvoyant event loop of
//! [`crate::engine::simulate`] — which independently re-validates every
//! allocation the rule emits. Integration tests check the online runs
//! against the core's clairvoyant replays of the *same* rules.
//!
//! * [`WdeqPolicy`] — Algorithm 1, the paper's 2-approximation.
//! * [`DeqPolicy`] — the unweighted special case (Deng et al.).
//! * [`UncappedSharePolicy`] — proportional share *without* surplus
//!   redistribution (ablation).
//! * [`PriorityPolicy`] — heaviest-first list allocation (unfair
//!   baseline).

use crate::engine::{OnlinePolicy, TaskView};
use malleable_core::policy::rules::{
    ActiveTask, AllocationRule, DeqRule, PriorityRule, ShareNoRedistributionRule, WdeqRule,
};
use numkit::Scalar;

/// Translate the engine's observable views into the core rule input and
/// delegate — the entire body of every adapter below. Generic over the
/// scalar like the rules themselves, so the adapters drive exact
/// simulations as readily as `f64` ones.
fn rule_rates<S: Scalar, R: AllocationRule<S>>(rule: &R, active: &[TaskView<S>], p: &S) -> Vec<S> {
    let views: Vec<ActiveTask<S>> = active
        .iter()
        .map(|v| ActiveTask {
            id: v.id,
            weight: v.weight.clone(),
            cap: v.delta.clone(),
            processed: v.processed.clone(),
        })
        .collect();
    rule.rates(&views, p)
}

macro_rules! rule_adapter {
    ($(#[$doc:meta])* $policy:ident => $rule:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $policy;

        impl<S: Scalar> OnlinePolicy<S> for $policy {
            fn name(&self) -> &'static str {
                AllocationRule::<S>::name(&$rule)
            }

            fn allocate(&mut self, _now: &S, active: &[TaskView<S>], p: &S) -> Vec<S> {
                rule_rates(&$rule, active, p)
            }
        }
    };
}

rule_adapter! {
    /// Algorithm 1 (WDEQ) as an online policy.
    WdeqPolicy => WdeqRule
}

rule_adapter! {
    /// DEQ: dynamic equipartition ignoring weights (all tasks count 1).
    DeqPolicy => DeqRule
}

rule_adapter! {
    /// Proportional weighted share clamped at `δᵢ`, **without**
    /// redistributing the clamped surplus. Wastes capacity whenever a cap
    /// binds.
    UncappedSharePolicy => ShareNoRedistributionRule
}

rule_adapter! {
    /// Weight-priority list allocation: active tasks sorted by weight
    /// (descending, ties by id), each takes `min(δ, remaining capacity)`.
    PriorityPolicy => PriorityRule
}

/// Names of every online-capable policy, in registry order. These are the
/// policies that can run under [`crate::engine::simulate`] against
/// streaming arrivals (the batch registry in `malleable_core::policy`
/// also contains clairvoyant solvers that cannot).
pub const ONLINE_POLICY_NAMES: &[&str] = &["wdeq", "deq", "share-no-redistribution", "priority"];

/// Look up an online policy adapter by its rule name. Returns `None` for
/// names not in [`ONLINE_POLICY_NAMES`].
pub fn by_name<S: Scalar>(name: &str) -> Option<Box<dyn OnlinePolicy<S>>> {
    match name {
        "wdeq" => Some(Box::new(WdeqPolicy)),
        "deq" => Some(Box::new(DeqPolicy)),
        "share-no-redistribution" => Some(Box::new(UncappedSharePolicy)),
        "priority" => Some(Box::new(PriorityPolicy)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use malleable_core::algos::wdeq::wdeq_schedule;
    use malleable_core::instance::Instance;
    use malleable_core::policy::rules::replay;

    fn inst() -> Instance {
        Instance::builder(4.0)
            .task(8.0, 1.0, 2.0)
            .task(4.0, 2.0, 4.0)
            .task(2.0, 4.0, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn online_wdeq_matches_clairvoyant_replay() {
        let i = inst();
        let online = simulate(&i, &mut WdeqPolicy).unwrap();
        let offline = wdeq_schedule(&i);
        for (a, b) in online.schedule.completions.iter().zip(&offline.completions) {
            assert!((a - b).abs() < 1e-9, "online {a} vs offline {b}");
        }
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let i = inst();
        let policies: Vec<Box<dyn crate::engine::OnlinePolicy>> = vec![
            Box::new(WdeqPolicy),
            Box::new(DeqPolicy),
            Box::new(UncappedSharePolicy),
            Box::new(PriorityPolicy),
        ];
        for mut p in policies {
            let r = simulate(&i, p.as_mut()).unwrap();
            r.schedule
                .validate(&i)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        }
    }

    #[test]
    fn every_adapter_agrees_with_its_core_replay() {
        // The same rule, run online (engine hides volumes) and replayed
        // clairvoyantly in core, must produce identical completion times —
        // the structural proof that sim holds no algorithm logic of its
        // own.
        let i = inst();
        for (mut online, rule) in [
            (
                Box::new(WdeqPolicy) as Box<dyn OnlinePolicy>,
                Box::new(WdeqRule) as Box<dyn AllocationRule<f64>>,
            ),
            (Box::new(DeqPolicy), Box::new(DeqRule)),
            (
                Box::new(UncappedSharePolicy),
                Box::new(ShareNoRedistributionRule),
            ),
            (Box::new(PriorityPolicy), Box::new(PriorityRule)),
        ] {
            let sim = simulate(&i, online.as_mut()).unwrap();
            let core = replay(&i, rule.as_ref()).unwrap();
            for (a, b) in sim.schedule.completions.iter().zip(&core.completions) {
                assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", online.name());
            }
        }
    }

    #[test]
    fn exact_online_run_matches_exact_replay() {
        // The adapters are generic: the same WDEQ rule, run under the
        // exact engine, reproduces the exact clairvoyant replay — with
        // `==`, not a tolerance.
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        let i = malleable_core::instance::Instance::<Rational>::builder(q(4.0))
            .task(q(8.0), q(1.0), q(2.0))
            .task(q(4.0), q(2.0), q(4.0))
            .task(q(2.0), q(4.0), q(1.0))
            .build()
            .unwrap();
        let online = simulate(&i, &mut WdeqPolicy).unwrap();
        online.schedule.validate(&i).unwrap(); // zero tolerance
        let offline = replay(&i, &WdeqRule).unwrap();
        assert_eq!(online.schedule.completions, offline.completions);
    }

    #[test]
    fn registry_resolves_every_listed_name() {
        for name in ONLINE_POLICY_NAMES {
            let p = by_name::<f64>(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(p.name(), *name);
        }
        assert!(by_name::<f64>("optimal").is_none());
    }

    #[test]
    fn deq_ignores_weights() {
        // Same caps/volumes, very different weights: DEQ treats them alike.
        let i = Instance::builder(2.0)
            .task(1.0, 100.0, 1.0)
            .task(1.0, 0.01, 1.0)
            .build()
            .unwrap();
        let r = simulate(&i, &mut DeqPolicy).unwrap();
        assert!((r.schedule.completions[0] - r.schedule.completions[1]).abs() < 1e-9);
    }

    #[test]
    fn redistribution_beats_naive_share() {
        // T0's cap binds hard; WDEQ hands the surplus to T1, the naive
        // share wastes it.
        let i = Instance::builder(10.0)
            .task(1.0, 9.0, 1.0) // heavy but capped at 1
            .task(9.0, 1.0, 10.0)
            .build()
            .unwrap();
        let wdeq = simulate(&i, &mut WdeqPolicy).unwrap().cost(&i);
        let naive = simulate(&i, &mut UncappedSharePolicy).unwrap().cost(&i);
        assert!(
            wdeq < naive - 1e-9,
            "redistribution should help: wdeq {wdeq} vs naive {naive}"
        );
    }

    #[test]
    fn priority_serves_heaviest_first() {
        let i = Instance::builder(1.0)
            .task(1.0, 1.0, 1.0)
            .task(1.0, 5.0, 1.0)
            .build()
            .unwrap();
        let r = simulate(&i, &mut PriorityPolicy).unwrap();
        assert!((r.schedule.completions[1] - 1.0).abs() < 1e-9);
        assert!((r.schedule.completions[0] - 2.0).abs() < 1e-9);
    }
}
