//! Schedule quality metrics beyond the paper's objective.
//!
//! `Σ wᵢCᵢ` is what the theory optimizes, but operators of a malleable
//! runtime also watch utilization, per-task *stretch* (slowdown relative
//! to running alone at full parallelism) and allocation fairness. These
//! metrics make the experiment tables comparable with systems-style
//! evaluations.
//!
//! Generic over [`numkit::Scalar`] (f64 default): exact schedules get
//! exact metrics, so e.g. a certified run's utilization of `1` really is
//! the rational number one.

use malleable_core::instance::Instance;
use malleable_core::schedule::column::ColumnSchedule;
use numkit::Scalar;

/// Machine utilization: busy area / (P × makespan). 1.0 means no idling
/// before the last completion.
pub fn utilization<S: Scalar>(schedule: &ColumnSchedule<S>) -> S {
    let span = schedule.makespan();
    if !span.is_positive() {
        return S::zero();
    }
    let busy = S::sum(
        schedule
            .columns
            .iter()
            .map(|col| col.total_rate() * col.len()),
    );
    busy / (schedule.p.clone() * span)
}

/// Per-task stretch `Cᵢ / hᵢ` where `hᵢ = Vᵢ/min(δᵢ,P)` is the task's
/// running time on an otherwise empty machine. Always ≥ 1.
pub fn stretches<S: Scalar>(instance: &Instance<S>, schedule: &ColumnSchedule<S>) -> Vec<S> {
    instance
        .iter()
        .map(|(id, t)| {
            let alone = t.volume.clone() / t.delta.clone().min_of(instance.p.clone());
            schedule.completion(id) / alone
        })
        .collect()
}

/// Maximum stretch (the "worst slowdown" metric).
pub fn max_stretch<S: Scalar>(instance: &Instance<S>, schedule: &ColumnSchedule<S>) -> S {
    stretches(instance, schedule)
        .into_iter()
        .fold(S::one(), S::max_of)
}

/// Jain's fairness index over weighted inverse stretches
/// `xᵢ = wᵢ·hᵢ/Cᵢ`: 1.0 = perfectly proportional service, `1/n` =
/// maximally unfair. Standard measure for fair-sharing schedulers, which
/// is what WDEQ is. Tasks with zero completion time (possible only on
/// degenerate schedules) are scored as receiving full service, so the
/// index stays finite.
pub fn jain_fairness<S: Scalar>(instance: &Instance<S>, schedule: &ColumnSchedule<S>) -> S {
    let xs: Vec<S> = instance
        .iter()
        .map(|(id, t)| {
            let alone = t.volume.clone() / t.delta.clone().min_of(instance.p.clone());
            let c = schedule.completion(id);
            if c.is_positive() {
                t.weight.clone() * alone / c
            } else {
                t.weight.clone()
            }
        })
        .collect();
    let n = xs.len();
    if n == 0 {
        return S::one();
    }
    let sum = S::sum(xs.iter().cloned());
    let sq = S::sum(xs.iter().map(|x| x.clone() * x.clone()));
    if !sq.is_positive() {
        return S::one();
    }
    sum.clone() * sum / (S::from_int(n as i64) * sq)
}

/// Everything at once, for experiment tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleMetrics<S = f64> {
    /// `Σ wᵢCᵢ`.
    pub weighted_completion: S,
    /// `max Cᵢ`.
    pub makespan: S,
    /// Busy fraction of the machine until the makespan.
    pub utilization: S,
    /// Worst task slowdown.
    pub max_stretch: S,
    /// Jain index of weighted service.
    pub jain_fairness: S,
}

/// Compute [`ScheduleMetrics`] for a schedule.
pub fn metrics<S: Scalar>(
    instance: &Instance<S>,
    schedule: &ColumnSchedule<S>,
) -> ScheduleMetrics<S> {
    ScheduleMetrics {
        weighted_completion: schedule.weighted_completion_cost(instance),
        makespan: schedule.makespan(),
        utilization: utilization(schedule),
        max_stretch: max_stretch(instance, schedule),
        jain_fairness: jain_fairness(instance, schedule),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::policies::{PriorityPolicy, WdeqPolicy};
    use malleable_core::instance::Instance;

    fn inst() -> Instance {
        Instance::builder(2.0)
            .task(2.0, 1.0, 1.0)
            .task(2.0, 1.0, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn perfect_packing_has_unit_utilization() {
        let r = simulate(&inst(), &mut WdeqPolicy).unwrap();
        let u = utilization(&r.schedule);
        assert!((u - 1.0).abs() < 1e-9, "two δ=1 tasks fill P=2: {u}");
    }

    #[test]
    fn stretch_is_one_on_an_empty_machine() {
        let single = Instance::builder(4.0).task(2.0, 1.0, 2.0).build().unwrap();
        let r = simulate(&single, &mut WdeqPolicy).unwrap();
        assert!((max_stretch(&single, &r.schedule) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fair_sharing_scores_higher_fairness_than_priority() {
        // Symmetric wide tasks (δ = P): WDEQ splits the machine evenly
        // (Jain = 1); priority gives everything to one task first.
        let i = Instance::builder(2.0)
            .task(2.0, 1.0, 2.0)
            .task(2.0, 1.0, 2.0)
            .build()
            .unwrap();
        let fair = simulate(&i, &mut WdeqPolicy).unwrap();
        let unfair = simulate(&i, &mut PriorityPolicy).unwrap();
        let jf = jain_fairness(&i, &fair.schedule);
        let ju = jain_fairness(&i, &unfair.schedule);
        assert!(jf > 0.999, "symmetric WDEQ should be perfectly fair: {jf}");
        assert!(ju < jf, "priority must be less fair: {ju} vs {jf}");
    }

    #[test]
    fn metrics_bundle_consistent() {
        let i = inst();
        let r = simulate(&i, &mut WdeqPolicy).unwrap();
        let m = metrics(&i, &r.schedule);
        assert_eq!(
            m.weighted_completion,
            r.schedule.weighted_completion_cost(&i)
        );
        assert_eq!(m.makespan, r.schedule.makespan());
        assert!(m.max_stretch >= 1.0);
        assert!(m.jain_fairness <= 1.0 + 1e-12);
    }

    #[test]
    fn exact_metrics_are_exact() {
        // A perfectly packed exact schedule scores utilization and Jain
        // index of exactly one — the rational number, not 1 ± ε.
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        let i = Instance::<Rational>::builder(q(2.0))
            .task(q(2.0), q(1.0), q(1.0))
            .task(q(2.0), q(1.0), q(1.0))
            .build()
            .unwrap();
        let r = simulate(&i, &mut WdeqPolicy).unwrap();
        let m = metrics(&i, &r.schedule);
        assert_eq!(m.utilization, Rational::from_int(1));
        assert_eq!(m.jain_fairness, Rational::from_int(1));
        assert_eq!(m.makespan, Rational::from_int(2));
    }

    #[test]
    fn empty_schedule_metrics_are_sane() {
        let empty = ColumnSchedule {
            p: 2.0,
            completions: vec![],
            columns: vec![],
        };
        assert_eq!(utilization(&empty), 0.0);
        let no_tasks = Instance::identical(2.0, vec![]);
        assert_eq!(jain_fairness(&no_tasks, &empty), 1.0);
        let m = metrics(&no_tasks, &empty);
        assert_eq!(m.weighted_completion, 0.0);
    }
}
