//! Schedule quality metrics beyond the paper's objective.
//!
//! `Σ wᵢCᵢ` is what the theory optimizes, but operators of a malleable
//! runtime also watch utilization, per-task *stretch* (slowdown relative
//! to running alone at full parallelism) and allocation fairness. These
//! metrics make the experiment tables comparable with systems-style
//! evaluations.

use malleable_core::instance::Instance;
use malleable_core::schedule::column::ColumnSchedule;
use numkit::KahanSum;

/// Machine utilization: busy area / (P × makespan). 1.0 means no idling
/// before the last completion.
pub fn utilization(schedule: &ColumnSchedule) -> f64 {
    let span = schedule.makespan();
    if span <= 0.0 {
        return 0.0;
    }
    let mut busy = KahanSum::new();
    for col in &schedule.columns {
        busy.add(col.total_rate() * col.len());
    }
    busy.value() / (schedule.p * span)
}

/// Per-task stretch `Cᵢ / hᵢ` where `hᵢ = Vᵢ/min(δᵢ,P)` is the task's
/// running time on an otherwise empty machine. Always ≥ 1.
pub fn stretches(instance: &Instance, schedule: &ColumnSchedule) -> Vec<f64> {
    instance
        .iter()
        .map(|(id, t)| {
            let alone = t.volume / t.delta.min(instance.p);
            schedule.completion(id) / alone
        })
        .collect()
}

/// Maximum stretch (the "worst slowdown" metric).
pub fn max_stretch(instance: &Instance, schedule: &ColumnSchedule) -> f64 {
    stretches(instance, schedule)
        .into_iter()
        .fold(1.0, f64::max)
}

/// Jain's fairness index over weighted inverse stretches
/// `xᵢ = wᵢ·hᵢ/Cᵢ`: 1.0 = perfectly proportional service, `1/n` =
/// maximally unfair. Standard measure for fair-sharing schedulers, which
/// is what WDEQ is.
pub fn jain_fairness(instance: &Instance, schedule: &ColumnSchedule) -> f64 {
    let xs: Vec<f64> = instance
        .iter()
        .map(|(id, t)| {
            let alone = t.volume / t.delta.min(instance.p);
            let c = schedule.completion(id).max(1e-300);
            t.weight * alone / c
        })
        .collect();
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sq)
}

/// Everything at once, for experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleMetrics {
    /// `Σ wᵢCᵢ`.
    pub weighted_completion: f64,
    /// `max Cᵢ`.
    pub makespan: f64,
    /// Busy fraction of the machine until the makespan.
    pub utilization: f64,
    /// Worst task slowdown.
    pub max_stretch: f64,
    /// Jain index of weighted service.
    pub jain_fairness: f64,
}

/// Compute [`ScheduleMetrics`] for a schedule.
pub fn metrics(instance: &Instance, schedule: &ColumnSchedule) -> ScheduleMetrics {
    ScheduleMetrics {
        weighted_completion: schedule.weighted_completion_cost(instance),
        makespan: schedule.makespan(),
        utilization: utilization(schedule),
        max_stretch: max_stretch(instance, schedule),
        jain_fairness: jain_fairness(instance, schedule),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::policies::{PriorityPolicy, WdeqPolicy};
    use malleable_core::instance::Instance;

    fn inst() -> Instance {
        Instance::builder(2.0)
            .task(2.0, 1.0, 1.0)
            .task(2.0, 1.0, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn perfect_packing_has_unit_utilization() {
        let r = simulate(&inst(), &mut WdeqPolicy).unwrap();
        let u = utilization(&r.schedule);
        assert!((u - 1.0).abs() < 1e-9, "two δ=1 tasks fill P=2: {u}");
    }

    #[test]
    fn stretch_is_one_on_an_empty_machine() {
        let single = Instance::builder(4.0).task(2.0, 1.0, 2.0).build().unwrap();
        let r = simulate(&single, &mut WdeqPolicy).unwrap();
        assert!((max_stretch(&single, &r.schedule) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fair_sharing_scores_higher_fairness_than_priority() {
        // Symmetric wide tasks (δ = P): WDEQ splits the machine evenly
        // (Jain = 1); priority gives everything to one task first.
        let i = Instance::builder(2.0)
            .task(2.0, 1.0, 2.0)
            .task(2.0, 1.0, 2.0)
            .build()
            .unwrap();
        let fair = simulate(&i, &mut WdeqPolicy).unwrap();
        let unfair = simulate(&i, &mut PriorityPolicy).unwrap();
        let jf = jain_fairness(&i, &fair.schedule);
        let ju = jain_fairness(&i, &unfair.schedule);
        assert!(jf > 0.999, "symmetric WDEQ should be perfectly fair: {jf}");
        assert!(ju < jf, "priority must be less fair: {ju} vs {jf}");
    }

    #[test]
    fn metrics_bundle_consistent() {
        let i = inst();
        let r = simulate(&i, &mut WdeqPolicy).unwrap();
        let m = metrics(&i, &r.schedule);
        assert_eq!(
            m.weighted_completion,
            r.schedule.weighted_completion_cost(&i)
        );
        assert_eq!(m.makespan, r.schedule.makespan());
        assert!(m.max_stretch >= 1.0);
        assert!(m.jain_fairness <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_schedule_metrics_are_sane() {
        let empty = ColumnSchedule {
            p: 2.0,
            completions: vec![],
            columns: vec![],
        };
        assert_eq!(utilization(&empty), 0.0);
        let no_tasks = Instance {
            p: 2.0,
            tasks: vec![],
        };
        assert_eq!(jain_fairness(&no_tasks, &empty), 1.0);
    }
}
