//! The paper's motivating application (Section I, Figure 1): bandwidth
//! sharing for code distribution in a master/worker platform.
//!
//! A server with outgoing bandwidth `P` must send a code of size `Vᵢ` to
//! each worker `Pᵢ`, whose incoming link caps the transfer rate at `δᵢ`.
//! Once its code is fully received (at time `Cᵢ`), worker `i` processes
//! tasks at rate `wᵢ` until the horizon `T`. Total work processed is
//!
//! ```text
//! Σᵢ wᵢ·max(0, T − Cᵢ)  =  T·Σwᵢ − Σ wᵢCᵢ      (when all Cᵢ ≤ T)
//! ```
//!
//! so *maximizing throughput is exactly minimizing the weighted sum of
//! completion times* of the malleable transfer schedule — the reduction
//! this module makes executable.

use crate::engine::{simulate, OnlinePolicy, SimError};
use malleable_core::instance::{Instance, Task};
use malleable_core::schedule::column::ColumnSchedule;
use numkit::KahanSum;

/// One worker node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Worker {
    /// Size of the code to download (the task volume `Vᵢ`).
    pub code_size: f64,
    /// Task-processing rate once the code has arrived (the weight `wᵢ`).
    pub processing_rate: f64,
    /// Incoming link capacity (the parallelism cap `δᵢ`).
    pub link_capacity: f64,
}

/// A complete code-distribution scenario.
#[derive(Debug, Clone)]
pub struct BandwidthScenario {
    /// Server outgoing bandwidth (the machine capacity `P`).
    pub server_bandwidth: f64,
    /// The worker fleet.
    pub workers: Vec<Worker>,
}

/// Outcome of running a transfer schedule against a horizon.
#[derive(Debug, Clone)]
pub struct BandwidthReport {
    /// Name of the policy that produced the schedule.
    pub policy: &'static str,
    /// Completion time of each worker's download.
    pub completions: Vec<f64>,
    /// `Σ wᵢCᵢ` — the scheduling objective.
    pub weighted_completion: f64,
    /// `Σ wᵢ·max(0, T − Cᵢ)` — work units processed by the horizon.
    pub throughput: f64,
}

impl BandwidthScenario {
    /// The equivalent malleable instance: `V = code size`, `w = processing
    /// rate`, `δ = link capacity`.
    pub fn to_instance(&self) -> Instance {
        Instance::identical(
            self.server_bandwidth,
            self.workers
                .iter()
                .map(|w| Task::new(w.code_size, w.processing_rate, w.link_capacity))
                .collect(),
        )
    }

    /// Work processed by time `horizon` given download completion times.
    ///
    /// # Panics
    /// Panics when `completions` is not worker-aligned.
    pub fn throughput(&self, completions: &[f64], horizon: f64) -> f64 {
        assert_eq!(completions.len(), self.workers.len(), "worker count");
        let mut s = KahanSum::new();
        for (w, &c) in self.workers.iter().zip(completions) {
            s.add(w.processing_rate * (horizon - c).max(0.0));
        }
        s.value()
    }

    /// Distribute codes with an online policy and evaluate at `horizon`.
    ///
    /// # Errors
    /// Propagates [`SimError`] from the engine.
    pub fn run_policy(
        &self,
        policy: &mut dyn OnlinePolicy,
        horizon: f64,
    ) -> Result<BandwidthReport, SimError> {
        let instance = self.to_instance();
        let name = policy.name();
        let result = simulate(&instance, policy)?;
        Ok(self.report(name, &result.schedule, &instance, horizon))
    }

    /// Evaluate an externally produced transfer schedule at `horizon`.
    pub fn report(
        &self,
        policy: &'static str,
        schedule: &ColumnSchedule,
        instance: &Instance,
        horizon: f64,
    ) -> BandwidthReport {
        BandwidthReport {
            policy,
            completions: schedule.completions.clone(),
            weighted_completion: schedule.weighted_completion_cost(instance),
            throughput: self.throughput(&schedule.completions, horizon),
        }
    }

    /// Total processing capacity `Σ wᵢ` of the fleet.
    pub fn total_rate(&self) -> f64 {
        numkit::sum::ksum(self.workers.iter().map(|w| w.processing_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{PriorityPolicy, WdeqPolicy};

    fn fleet() -> BandwidthScenario {
        BandwidthScenario {
            server_bandwidth: 10.0,
            workers: vec![
                Worker {
                    code_size: 4.0,
                    processing_rate: 3.0,
                    link_capacity: 2.0,
                },
                Worker {
                    code_size: 8.0,
                    processing_rate: 1.0,
                    link_capacity: 6.0,
                },
                Worker {
                    code_size: 2.0,
                    processing_rate: 5.0,
                    link_capacity: 1.0,
                },
            ],
        }
    }

    #[test]
    fn instance_mapping() {
        let inst = fleet().to_instance();
        assert_eq!(inst.p, 10.0);
        assert_eq!(inst.tasks[0].volume, 4.0);
        assert_eq!(inst.tasks[0].weight, 3.0);
        assert_eq!(inst.tasks[0].delta, 2.0);
    }

    #[test]
    fn throughput_identity_when_all_complete() {
        // Σw·(T − C) = T·Σw − ΣwC whenever C ≤ T for all workers.
        let sc = fleet();
        let mut p = WdeqPolicy;
        let horizon = 100.0;
        let rep = sc.run_policy(&mut p, horizon).unwrap();
        let lhs = rep.throughput;
        let rhs = horizon * sc.total_rate() - rep.weighted_completion;
        assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
    }

    #[test]
    fn late_workers_contribute_nothing() {
        let sc = fleet();
        // Horizon before any download finishes → zero throughput.
        let t = sc.throughput(&[5.0, 5.0, 5.0], 1.0);
        assert_eq!(t, 0.0);
        // One early worker.
        let t = sc.throughput(&[0.5, 5.0, 5.0], 1.0);
        assert!((t - 3.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn lower_weighted_completion_means_higher_throughput() {
        let sc = fleet();
        let horizon = 50.0;
        let a = sc.run_policy(&mut WdeqPolicy, horizon).unwrap();
        let b = sc.run_policy(&mut PriorityPolicy, horizon).unwrap();
        // The equivalence: ordering by ΣwC is the reverse of ordering by
        // throughput (same horizon, same fleet).
        if a.weighted_completion < b.weighted_completion {
            assert!(a.throughput >= b.throughput - 1e-9);
        } else {
            assert!(b.throughput >= a.throughput - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "worker count")]
    fn throughput_checks_alignment() {
        fleet().throughput(&[1.0], 10.0);
    }
}
