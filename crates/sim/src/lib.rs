//! # malleable-sim — non-clairvoyant execution engine and applications
//!
//! The paper's WDEQ result (Theorem 4) is about the **non-clairvoyant**
//! setting: the scheduler never sees task volumes, only completions as they
//! happen. `malleable-core` replays WDEQ clairvoyantly (fast, closed-form);
//! this crate provides the honest version:
//!
//! * [`engine`] — an event-driven simulator that feeds an
//!   [`engine::OnlinePolicy`] only observable state (weights, caps,
//!   processed volume — never remaining volume) and advances between
//!   completion events. Policy outputs are validated against the machine
//!   model at every step.
//! * [`policies`] — WDEQ, DEQ (unweighted), weighted-share-without-
//!   redistribution (the WRR analogue) and a weight-priority baseline.
//! * [`bandwidth`] — the paper's Figure-1 application: a server with
//!   outgoing bandwidth `P` pushes code of size `Vᵢ` to workers with link
//!   capacity `δᵢ` and processing rate `wᵢ`; maximizing work processed by a
//!   horizon `T` is exactly minimizing `Σ wᵢCᵢ`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod engine;
pub mod metrics;
pub mod policies;

pub use bandwidth::{BandwidthReport, BandwidthScenario, Worker};
pub use engine::{simulate, OnlinePolicy, SimError, SimResult, TaskView};
pub use metrics::{metrics, ScheduleMetrics};
pub use policies::{DeqPolicy, PriorityPolicy, UncappedSharePolicy, WdeqPolicy};
