//! Event-driven non-clairvoyant simulation.
//!
//! The engine owns the ground truth (remaining volumes) and exposes only
//! observable state to the policy: task identity, weight, cap, the volume
//! *already processed* and the current time. Allocation is recomputed at
//! every event — task completions, and (when the instance carries release
//! times) task *arrivals* — the granularity the paper's malleable model
//! works at (between events, any constant allocation is equivalent to any
//! other with the same per-column totals, by Theorem 3).
//!
//! Streaming arrivals: an [`Instance`] with `arrivals` set releases each
//! task at its `rᵢ`; the policy only ever sees released, unfinished tasks,
//! and the engine cuts a fresh column at every release (so the executed
//! schedule never allocates a task before it exists — validated by
//! `ColumnSchedule::validate` against the same instance). Instances
//! without arrivals take the exact same code path as before, bit for bit.
//!
//! Like the core algorithm stack, the engine is generic over
//! [`numkit::Scalar`] with `f64` as the default: existing callers keep
//! the fast path unchanged, while an exact instantiation replays the same
//! event loop in certified arithmetic (every comparison at the zero
//! tolerance).

use malleable_core::instance::{Instance, TaskId};
use malleable_core::schedule::column::{Column, ColumnSchedule};
use malleable_core::ScheduleError;
use numkit::{Scalar, Tolerance};
use std::fmt;

/// Observable state of one unfinished task. Deliberately **no remaining
/// volume** — policies are non-clairvoyant.
#[derive(Debug, Clone)]
pub struct TaskView<S = f64> {
    /// Task identity (stable across events).
    pub id: TaskId,
    /// Weight `wᵢ` (known to the scheduler in the weighted model).
    pub weight: S,
    /// Effective cap `min(δᵢ, P)`.
    pub delta: S,
    /// Volume processed so far (observable: work done is measurable).
    pub processed: S,
}

/// A non-clairvoyant allocation policy.
///
/// `allocate` is invoked at `t = 0` and after every task completion; the
/// returned rates apply until the next event. Rates are indexed like
/// `active` and must satisfy `0 ≤ rateₖ ≤ active[k].delta` and
/// `Σ rateₖ ≤ p` (validated by the engine).
pub trait OnlinePolicy<S: Scalar = f64> {
    /// Human-readable name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Choose rates for the active tasks.
    fn allocate(&mut self, now: &S, active: &[TaskView<S>], p: &S) -> Vec<S>;
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The policy returned an invalid allocation.
    PolicyViolation {
        /// Which policy misbehaved.
        policy: &'static str,
        /// What it did wrong.
        reason: String,
    },
    /// No task makes progress under the returned allocation.
    Stalled {
        /// Simulation time at which progress stopped (approximate for
        /// exact scalars; diagnostics only).
        at: f64,
    },
    /// The instance itself was malformed.
    Instance(ScheduleError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PolicyViolation { policy, reason } => {
                write!(f, "policy {policy} returned invalid rates: {reason}")
            }
            SimError::Stalled { at } => write!(f, "simulation stalled at t = {at}"),
            SimError::Instance(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ScheduleError> for SimError {
    fn from(e: ScheduleError) -> Self {
        SimError::Instance(e)
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult<S = f64> {
    /// The executed schedule (columns = inter-event intervals).
    pub schedule: ColumnSchedule<S>,
    /// Number of allocation events (policy invocations).
    pub events: usize,
}

impl<S: Scalar> SimResult<S> {
    /// `Σ wᵢCᵢ` under the generating instance.
    pub fn cost(&self, instance: &Instance<S>) -> S {
        self.schedule.weighted_completion_cost(instance)
    }

    /// The paper's title objective as a *mean*: `Σ wᵢCᵢ / Σ wᵢ`. Returns
    /// zero for empty instances and all-zero weights instead of `NaN` —
    /// a workload with nothing to weight has trivially zero mean cost.
    pub fn mean_cost(&self, instance: &Instance<S>) -> S {
        let total_weight = S::sum(instance.tasks.iter().map(|t| t.weight.clone()));
        if !total_weight.is_positive() {
            return S::zero();
        }
        self.cost(instance) / total_weight
    }
}

/// Run `policy` on `instance` until all tasks complete, honoring release
/// times when the instance carries them (tasks become visible to the
/// policy only once arrived; every arrival cuts a new column).
///
/// # Errors
/// [`SimError::PolicyViolation`] when the policy emits out-of-range rates,
/// [`SimError::Stalled`] when no task progresses and nothing further
/// arrives, or [`SimError::Instance`] for malformed instances.
pub fn simulate<S: Scalar>(
    instance: &Instance<S>,
    policy: &mut dyn OnlinePolicy<S>,
) -> Result<SimResult<S>, SimError> {
    instance.validate()?;
    // The engine validates policies against the rate-space feasibility
    // region (per-task cap, Σ ≤ P), which is only the true region on
    // identical/uniform machines; related-machines policies run through
    // `malleable_core::policy` instead.
    instance.require_uniform_machine("the online simulation engine")?;
    let tol = Tolerance::<S>::for_instance(instance.n());
    let n = instance.n();
    let arrivals: Vec<S> = (0..n).map(|i| instance.arrival(TaskId(i))).collect();
    let mut remaining: Vec<S> = instance.tasks.iter().map(|t| t.volume.clone()).collect();
    let mut processed: Vec<S> = vec![S::zero(); n];
    // Tasks released at t = 0 start active; the rest wait in `pending`,
    // kept pop-friendly (latest arrival first, ties by id).
    let mut active: Vec<usize> = (0..n).filter(|&i| !arrivals[i].is_positive()).collect();
    let mut pending: Vec<usize> = (0..n).filter(|&i| arrivals[i].is_positive()).collect();
    pending.sort_by(|&a, &b| arrivals[b].total_cmp_s(&arrivals[a]).then(b.cmp(&a)));
    let mut completions = vec![S::zero(); n];
    let mut columns = Vec::new();
    let mut now = S::zero();
    let mut events = 0usize;
    // Scratch buffers reused across events: at n = 10⁵+ the per-event
    // view rebuild dominates allocator traffic if each iteration starts
    // from a fresh Vec.
    let mut views: Vec<TaskView<S>> = Vec::with_capacity(n);
    let mut done: Vec<usize> = Vec::new();

    while !active.is_empty() || !pending.is_empty() {
        // Release everything that has arrived by `now`.
        while let Some(&j) = pending.last() {
            if arrivals[j] <= now {
                active.push(pending.pop().expect("peeked"));
            } else {
                break;
            }
        }
        // Nothing runnable: idle forward to the next arrival with an
        // empty column (columns must stay contiguous from t = 0).
        if active.is_empty() {
            let j = *pending.last().expect("outer loop guarantees work left");
            columns.push(Column {
                start: now.clone(),
                end: arrivals[j].clone(),
                rates: vec![],
            });
            now = arrivals[j].clone();
            continue;
        }
        views.clear();
        views.extend(active.iter().map(|&i| TaskView {
            id: TaskId(i),
            weight: instance.tasks[i].weight.clone(),
            delta: instance.effective_delta(TaskId(i)),
            processed: processed[i].clone(),
        }));
        let rates = policy.allocate(&now, &views, &instance.p);
        events += 1;

        // Validate the policy's output.
        if rates.len() != views.len() {
            return Err(SimError::PolicyViolation {
                policy: policy.name(),
                reason: format!("{} rates for {} tasks", rates.len(), views.len()),
            });
        }
        let mut total = S::zero();
        for (r, v) in rates.iter().zip(&views) {
            if !r.is_finite() || *r < -tol.abs.clone() {
                return Err(SimError::PolicyViolation {
                    policy: policy.name(),
                    reason: format!("rate {:?} for task {} is negative/NaN", r, v.id),
                });
            }
            if !tol.le(r.clone(), v.delta.clone()) {
                return Err(SimError::PolicyViolation {
                    policy: policy.name(),
                    reason: format!("rate {:?} exceeds δ = {:?} for task {}", r, v.delta, v.id),
                });
            }
            total = total + r.clone();
        }
        if !tol.le(total.clone(), instance.p.clone()) {
            return Err(SimError::PolicyViolation {
                policy: policy.name(),
                reason: format!("total rate {:?} exceeds P = {:?}", total, instance.p),
            });
        }

        // Advance to the next completion.
        let mut dt: Option<S> = None;
        for (k, &i) in active.iter().enumerate() {
            if rates[k] > tol.abs {
                let t_i = remaining[i].clone() / rates[k].clone();
                dt = Some(match dt {
                    Some(d) => d.min_of(t_i),
                    None => t_i,
                });
            }
        }
        let dt = match dt {
            Some(d) if d.is_finite() && d.is_positive() => Some(d),
            _ => None,
        };
        // The column ends at the earlier of the next completion and the
        // next arrival; with neither in sight, the run is stalled. (After
        // the release pass, any pending arrival is strictly in the
        // future, so `step` is always positive.)
        let next_arrival = pending.last().map(|&j| arrivals[j].clone());
        let (step, end, arrival_cut) = match (dt, next_arrival) {
            (Some(d), Some(na)) => {
                if na < now.clone() + d.clone() {
                    (na.clone() - now.clone(), na, true)
                } else {
                    (d.clone(), now.clone() + d, false)
                }
            }
            (Some(d), None) => (d.clone(), now.clone() + d, false),
            (None, Some(na)) => (na.clone() - now.clone(), na, true),
            (None, None) => return Err(SimError::Stalled { at: now.to_f64() }),
        };

        columns.push(Column {
            start: now.clone(),
            end: end.clone(),
            rates: active
                .iter()
                .zip(&rates)
                .filter(|(_, r)| **r > tol.abs)
                .map(|(&i, r)| (TaskId(i), r.clone()))
                .collect(),
        });

        done.clear();
        for (k, &i) in active.iter().enumerate() {
            let inc = rates[k].clone() * step.clone();
            processed[i] = processed[i].clone() + inc.clone();
            remaining[i] = remaining[i].clone() - inc;
            if remaining[i] <= tol.slack(instance.tasks[i].volume.clone(), S::zero()) {
                remaining[i] = S::zero();
                completions[i] = end.clone();
                done.push(i);
            }
        }
        debug_assert!(
            arrival_cut || !done.is_empty(),
            "step chosen as a completion time"
        );
        active.retain(|i| !done.contains(i));
        now = end;
    }

    Ok(SimResult {
        schedule: ColumnSchedule {
            p: instance.p.clone(),
            completions,
            columns,
        },
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::instance::Instance;

    /// Gives everything to the first active task (capped), rest zero.
    struct FirstFit;
    impl OnlinePolicy for FirstFit {
        fn name(&self) -> &'static str {
            "first-fit"
        }
        fn allocate(&mut self, _now: &f64, active: &[TaskView], p: &f64) -> Vec<f64> {
            let mut left = *p;
            active
                .iter()
                .map(|v| {
                    let r = v.delta.min(left);
                    left -= r;
                    r
                })
                .collect()
        }
    }

    struct BadLength;
    impl OnlinePolicy for BadLength {
        fn name(&self) -> &'static str {
            "bad-length"
        }
        fn allocate(&mut self, _: &f64, _: &[TaskView], _: &f64) -> Vec<f64> {
            vec![]
        }
    }

    struct OverCap;
    impl OnlinePolicy for OverCap {
        fn name(&self) -> &'static str {
            "over-cap"
        }
        fn allocate(&mut self, _: &f64, active: &[TaskView], _: &f64) -> Vec<f64> {
            active.iter().map(|v| v.delta * 2.0).collect()
        }
    }

    struct Lazy;
    impl OnlinePolicy for Lazy {
        fn name(&self) -> &'static str {
            "lazy"
        }
        fn allocate(&mut self, _: &f64, active: &[TaskView], _: &f64) -> Vec<f64> {
            vec![0.0; active.len()]
        }
    }

    fn inst() -> Instance {
        Instance::builder(2.0)
            .task(2.0, 1.0, 1.0)
            .task(1.0, 1.0, 2.0)
            .build()
            .unwrap()
    }

    #[test]
    fn first_fit_runs_to_completion() {
        let r = simulate(&inst(), &mut FirstFit).unwrap();
        r.schedule.validate(&inst()).unwrap();
        // T0 at rate 1 [0,2]; T1 at rate 1 [0,1]. Both events recorded.
        assert_eq!(r.schedule.completions, vec![2.0, 1.0]);
        assert_eq!(r.events, 2);
        assert!((r.cost(&inst()) - 3.0).abs() < 1e-9);
        assert!((r.mean_cost(&inst()) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn policy_violations_detected() {
        assert!(matches!(
            simulate(&inst(), &mut BadLength),
            Err(SimError::PolicyViolation { .. })
        ));
        assert!(matches!(
            simulate(&inst(), &mut OverCap),
            Err(SimError::PolicyViolation { .. })
        ));
    }

    #[test]
    fn stall_detected() {
        assert!(matches!(
            simulate(&inst(), &mut Lazy),
            Err(SimError::Stalled { .. })
        ));
    }

    #[test]
    fn empty_instance_completes_with_zero_cost() {
        // n = 0: the loop never runs, the schedule is empty and both cost
        // aggregates are zero (not NaN).
        let empty = Instance::new(2.0, vec![]).unwrap();
        let r = simulate(&empty, &mut FirstFit).unwrap();
        assert_eq!(r.events, 0);
        assert_eq!(r.cost(&empty), 0.0);
        assert_eq!(r.mean_cost(&empty), 0.0);
    }

    #[test]
    fn zero_total_weight_mean_cost_is_zero_not_nan() {
        let i = Instance::builder(2.0)
            .task(1.0, 0.0, 1.0)
            .task(1.0, 0.0, 2.0)
            .build()
            .unwrap();
        let r = simulate(&i, &mut FirstFit).unwrap();
        assert_eq!(r.cost(&i), 0.0);
        // Σ wᵢCᵢ / Σ wᵢ would be 0/0; the guard returns zero.
        assert_eq!(r.mean_cost(&i), 0.0);
        assert!(r.mean_cost(&i).is_finite());
    }

    #[test]
    fn exact_simulation_validates_at_zero_tolerance() {
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        struct Even;
        impl OnlinePolicy<Rational> for Even {
            fn name(&self) -> &'static str {
                "even"
            }
            fn allocate(
                &mut self,
                _: &Rational,
                active: &[TaskView<Rational>],
                p: &Rational,
            ) -> Vec<Rational> {
                let share = p.clone() / Rational::from_int(active.len() as i64);
                active
                    .iter()
                    .map(|v| v.delta.clone().min_of(share.clone()))
                    .collect()
            }
        }
        let i = Instance::<Rational>::builder(q(3.0))
            .task(q(2.0), q(1.0), q(1.0))
            .task(q(1.0), q(2.0), q(3.0))
            .build()
            .unwrap();
        let r = simulate(&i, &mut Even).unwrap();
        r.schedule.validate(&i).unwrap(); // zero tolerance
        assert_eq!(r.cost(&i), r.schedule.weighted_completion_cost(&i));
    }

    #[test]
    fn arrivals_delay_visibility_and_cut_columns() {
        // T0 (V=2, δ=1) at t = 0; T1 (V=1, δ=2) arrives at t = 1.
        let timed = inst().with_arrivals(vec![0.0, 1.0]).unwrap();
        let r = simulate(&timed, &mut FirstFit).unwrap();
        r.schedule.validate(&timed).unwrap(); // includes the arrival check
                                              // T0 runs alone on [0,1] (arrival cut), then both to completion:
                                              // T0 finishes at 2, T1 (rate 1, the leftover capacity) at 2.
        assert_eq!(r.schedule.completions, vec![2.0, 2.0]);
        assert!(r.schedule.columns.len() >= 2);
        assert_eq!(r.schedule.columns[0].end, 1.0);
        assert_eq!(r.schedule.columns[0].rates.len(), 1);
        // Offline solve of the same instance without arrivals differs:
        // FirstFit would finish T1 at t = 0.5. The arrival delayed it.
        let offline = simulate(&inst(), &mut FirstFit).unwrap();
        assert_eq!(offline.schedule.completions, vec![2.0, 1.0]);
    }

    #[test]
    fn idle_gap_before_late_arrival_is_an_empty_column() {
        // Single task arriving at t = 3: the engine idles [0,3], then runs
        // it to completion at 5.
        let late = Instance::builder(2.0)
            .task(2.0, 1.0, 1.0)
            .arrivals(vec![3.0])
            .build()
            .unwrap();
        let r = simulate(&late, &mut FirstFit).unwrap();
        r.schedule.validate(&late).unwrap();
        assert_eq!(r.schedule.completions, vec![5.0]);
        assert_eq!(r.schedule.columns[0].rates.len(), 0);
        assert_eq!(r.schedule.columns[0].end, 3.0);
    }

    #[test]
    fn stall_after_last_arrival_detected() {
        let timed = inst().with_arrivals(vec![0.0, 1.0]).unwrap();
        assert!(matches!(
            simulate(&timed, &mut Lazy),
            Err(SimError::Stalled { at }) if at >= 1.0
        ));
    }

    #[test]
    fn zero_arrivals_match_the_offline_path_bitwise() {
        let zeroed = inst().with_arrivals(vec![0.0, 0.0]).unwrap();
        let a = simulate(&inst(), &mut FirstFit).unwrap();
        let b = simulate(&zeroed, &mut FirstFit).unwrap();
        assert_eq!(a.schedule.completions, b.schedule.completions);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn exact_arrival_simulation_validates_at_zero_tolerance() {
        use bigratio::Rational;
        let q = Rational::from_f64_exact;
        struct Even;
        impl OnlinePolicy<Rational> for Even {
            fn name(&self) -> &'static str {
                "even"
            }
            fn allocate(
                &mut self,
                _: &Rational,
                active: &[TaskView<Rational>],
                p: &Rational,
            ) -> Vec<Rational> {
                let share = p.clone() / Rational::from_int(active.len() as i64);
                active
                    .iter()
                    .map(|v| v.delta.clone().min_of(share.clone()))
                    .collect()
            }
        }
        let i = Instance::<Rational>::builder(q(3.0))
            .task(q(2.0), q(1.0), q(1.0))
            .task(q(1.0), q(2.0), q(3.0))
            .arrivals(vec![q(0.0), q(0.5)])
            .build()
            .unwrap();
        let r = simulate(&i, &mut Even).unwrap();
        r.schedule.validate(&i).unwrap(); // zero tolerance, incl. arrivals
    }

    #[test]
    fn views_hide_remaining_volume() {
        // Structural guarantee: TaskView has no remaining-volume field.
        // Verify the observable `processed` increases across events.
        struct Recorder {
            seen: Vec<f64>,
        }
        impl OnlinePolicy for Recorder {
            fn name(&self) -> &'static str {
                "recorder"
            }
            fn allocate(&mut self, _: &f64, active: &[TaskView], p: &f64) -> Vec<f64> {
                self.seen.push(active[0].processed);
                let share = p / active.len() as f64;
                active.iter().map(|v| v.delta.min(share)).collect()
            }
        }
        let mut rec = Recorder { seen: vec![] };
        simulate(&inst(), &mut rec).unwrap();
        assert!(rec.seen.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(rec.seen[0], 0.0);
    }
}
