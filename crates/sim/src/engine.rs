//! Event-driven non-clairvoyant simulation.
//!
//! The engine owns the ground truth (remaining volumes) and exposes only
//! observable state to the policy: task identity, weight, cap, the volume
//! *already processed* and the current time. Allocation is recomputed at
//! every completion event — the granularity the paper's malleable model
//! works at (between completions, any constant allocation is equivalent to
//! any other with the same per-column totals, by Theorem 3).

use malleable_core::instance::{Instance, TaskId};
use malleable_core::schedule::column::{Column, ColumnSchedule};
use malleable_core::ScheduleError;
use numkit::Tolerance;
use std::fmt;

/// Observable state of one unfinished task. Deliberately **no remaining
/// volume** — policies are non-clairvoyant.
#[derive(Debug, Clone)]
pub struct TaskView {
    /// Task identity (stable across events).
    pub id: TaskId,
    /// Weight `wᵢ` (known to the scheduler in the weighted model).
    pub weight: f64,
    /// Effective cap `min(δᵢ, P)`.
    pub delta: f64,
    /// Volume processed so far (observable: work done is measurable).
    pub processed: f64,
}

/// A non-clairvoyant allocation policy.
///
/// `allocate` is invoked at `t = 0` and after every task completion; the
/// returned rates apply until the next event. Rates are indexed like
/// `active` and must satisfy `0 ≤ rateₖ ≤ active[k].delta` and
/// `Σ rateₖ ≤ p` (validated by the engine).
pub trait OnlinePolicy {
    /// Human-readable name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Choose rates for the active tasks.
    fn allocate(&mut self, now: f64, active: &[TaskView], p: f64) -> Vec<f64>;
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The policy returned an invalid allocation.
    PolicyViolation {
        /// Which policy misbehaved.
        policy: &'static str,
        /// What it did wrong.
        reason: String,
    },
    /// No task makes progress under the returned allocation.
    Stalled {
        /// Simulation time at which progress stopped.
        at: f64,
    },
    /// The instance itself was malformed.
    Instance(ScheduleError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PolicyViolation { policy, reason } => {
                write!(f, "policy {policy} returned invalid rates: {reason}")
            }
            SimError::Stalled { at } => write!(f, "simulation stalled at t = {at}"),
            SimError::Instance(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ScheduleError> for SimError {
    fn from(e: ScheduleError) -> Self {
        SimError::Instance(e)
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The executed schedule (columns = inter-event intervals).
    pub schedule: ColumnSchedule,
    /// Number of allocation events (policy invocations).
    pub events: usize,
}

impl SimResult {
    /// `Σ wᵢCᵢ` under the generating instance.
    pub fn cost(&self, instance: &Instance) -> f64 {
        self.schedule.weighted_completion_cost(instance)
    }
}

/// Run `policy` on `instance` until all tasks complete.
///
/// # Errors
/// [`SimError::PolicyViolation`] when the policy emits out-of-range rates,
/// [`SimError::Stalled`] when no task progresses, or
/// [`SimError::Instance`] for malformed instances.
pub fn simulate(instance: &Instance, policy: &mut dyn OnlinePolicy) -> Result<SimResult, SimError> {
    instance.validate()?;
    let tol = Tolerance::<f64>::default().scaled(1.0 + instance.n() as f64);
    let n = instance.n();
    let mut remaining: Vec<f64> = instance.tasks.iter().map(|t| t.volume).collect();
    let mut processed: Vec<f64> = vec![0.0; n];
    let mut active: Vec<usize> = (0..n).collect();
    let mut completions = vec![0.0f64; n];
    let mut columns = Vec::new();
    let mut now = 0.0f64;
    let mut events = 0usize;

    while !active.is_empty() {
        let views: Vec<TaskView> = active
            .iter()
            .map(|&i| TaskView {
                id: TaskId(i),
                weight: instance.tasks[i].weight,
                delta: instance.effective_delta(TaskId(i)),
                processed: processed[i],
            })
            .collect();
        let rates = policy.allocate(now, &views, instance.p);
        events += 1;

        // Validate the policy's output.
        if rates.len() != views.len() {
            return Err(SimError::PolicyViolation {
                policy: policy.name(),
                reason: format!("{} rates for {} tasks", rates.len(), views.len()),
            });
        }
        let mut total = 0.0;
        for (k, (&r, v)) in rates.iter().zip(&views).enumerate() {
            if !r.is_finite() || r < -tol.abs {
                return Err(SimError::PolicyViolation {
                    policy: policy.name(),
                    reason: format!("rate {r} for task {} is negative/NaN", v.id),
                });
            }
            if !tol.le(r, v.delta) {
                return Err(SimError::PolicyViolation {
                    policy: policy.name(),
                    reason: format!("rate {r} exceeds δ = {} for task {}", v.delta, v.id),
                });
            }
            total += r;
            let _ = k;
        }
        if !tol.le(total, instance.p) {
            return Err(SimError::PolicyViolation {
                policy: policy.name(),
                reason: format!("total rate {total} exceeds P = {}", instance.p),
            });
        }

        // Advance to the next completion.
        let mut dt = f64::INFINITY;
        for (k, &i) in active.iter().enumerate() {
            if rates[k] > tol.abs {
                dt = dt.min(remaining[i] / rates[k]);
            }
        }
        if !dt.is_finite() || dt <= 0.0 {
            return Err(SimError::Stalled { at: now });
        }

        columns.push(Column {
            start: now,
            end: now + dt,
            rates: active
                .iter()
                .zip(&rates)
                .filter(|(_, &r)| r > tol.abs)
                .map(|(&i, &r)| (TaskId(i), r))
                .collect(),
        });

        let mut done = Vec::new();
        for (k, &i) in active.iter().enumerate() {
            let inc = rates[k] * dt;
            processed[i] += inc;
            remaining[i] -= inc;
            if remaining[i] <= tol.slack(instance.tasks[i].volume, 0.0) {
                remaining[i] = 0.0;
                completions[i] = now + dt;
                done.push(i);
            }
        }
        debug_assert!(!done.is_empty(), "dt chosen as a completion time");
        active.retain(|i| !done.contains(i));
        now += dt;
    }

    Ok(SimResult {
        schedule: ColumnSchedule {
            p: instance.p,
            completions,
            columns,
        },
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::instance::Instance;

    /// Gives everything to the first active task (capped), rest zero.
    struct FirstFit;
    impl OnlinePolicy for FirstFit {
        fn name(&self) -> &'static str {
            "first-fit"
        }
        fn allocate(&mut self, _now: f64, active: &[TaskView], p: f64) -> Vec<f64> {
            let mut left = p;
            active
                .iter()
                .map(|v| {
                    let r = v.delta.min(left);
                    left -= r;
                    r
                })
                .collect()
        }
    }

    struct BadLength;
    impl OnlinePolicy for BadLength {
        fn name(&self) -> &'static str {
            "bad-length"
        }
        fn allocate(&mut self, _: f64, _: &[TaskView], _: f64) -> Vec<f64> {
            vec![]
        }
    }

    struct OverCap;
    impl OnlinePolicy for OverCap {
        fn name(&self) -> &'static str {
            "over-cap"
        }
        fn allocate(&mut self, _: f64, active: &[TaskView], _: f64) -> Vec<f64> {
            active.iter().map(|v| v.delta * 2.0).collect()
        }
    }

    struct Lazy;
    impl OnlinePolicy for Lazy {
        fn name(&self) -> &'static str {
            "lazy"
        }
        fn allocate(&mut self, _: f64, active: &[TaskView], _: f64) -> Vec<f64> {
            vec![0.0; active.len()]
        }
    }

    fn inst() -> Instance {
        Instance::builder(2.0)
            .task(2.0, 1.0, 1.0)
            .task(1.0, 1.0, 2.0)
            .build()
            .unwrap()
    }

    #[test]
    fn first_fit_runs_to_completion() {
        let r = simulate(&inst(), &mut FirstFit).unwrap();
        r.schedule.validate(&inst()).unwrap();
        // T0 at rate 1 [0,2]; T1 at rate 1 [0,1]. Both events recorded.
        assert_eq!(r.schedule.completions, vec![2.0, 1.0]);
        assert_eq!(r.events, 2);
        assert!((r.cost(&inst()) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn policy_violations_detected() {
        assert!(matches!(
            simulate(&inst(), &mut BadLength),
            Err(SimError::PolicyViolation { .. })
        ));
        assert!(matches!(
            simulate(&inst(), &mut OverCap),
            Err(SimError::PolicyViolation { .. })
        ));
    }

    #[test]
    fn stall_detected() {
        assert!(matches!(
            simulate(&inst(), &mut Lazy),
            Err(SimError::Stalled { .. })
        ));
    }

    #[test]
    fn views_hide_remaining_volume() {
        // Structural guarantee: TaskView has no remaining-volume field.
        // Verify the observable `processed` increases across events.
        struct Recorder {
            seen: Vec<f64>,
        }
        impl OnlinePolicy for Recorder {
            fn name(&self) -> &'static str {
                "recorder"
            }
            fn allocate(&mut self, _: f64, active: &[TaskView], p: f64) -> Vec<f64> {
                self.seen.push(active[0].processed);
                let share = p / active.len() as f64;
                active.iter().map(|v| v.delta.min(share)).collect()
            }
        }
        let mut rec = Recorder { seen: vec![] };
        simulate(&inst(), &mut rec).unwrap();
        assert!(rec.seen.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(rec.seen[0], 0.0);
    }
}
