//! # malleable-workloads — seeded instance generators
//!
//! Reproduces the experimental setups of the IPDPS 2012 paper plus stress
//! classes used by this repository's wider evaluation:
//!
//! * [`Spec::PaperUniform`] — Section V-A: `P = 1`, tasks sampled
//!   "uniform among tasks such that δᵢ < P, wᵢ < 1 and Vᵢ < 1";
//! * [`Spec::ConstantWeight`] / [`Spec::ConstantWeightVolume`] — the two
//!   homogeneity variants the paper also ran;
//! * [`Spec::HomogeneousHalfCap`] — Section V-B: `Vᵢ = wᵢ = 1, P = 1,
//!   δᵢ ∈ [½, 1]` (the class of Theorem 11 / Conjectures 12–13);
//! * integer machines, Zipf weights, bimodal volumes, adversarial stairs
//!   and bandwidth fleets for the extended experiments.
//!
//! All generation is deterministic in `(Spec, seed)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use malleable_core::instance::{Instance, Task};
use malleable_core::machine::MachineModel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::borrow::Cow;

/// Floor on sampled values: keeps instances non-degenerate (the paper's
/// "uniform" draws are continuous, so exact zeros have measure zero; a
/// small floor avoids float pathologies without changing the distribution
/// materially).
const LO: f64 = 0.01;

/// A named workload family.
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// §V-A uniform instances: `P = 1`, `δ, w, V ~ U(0, 1)`.
    PaperUniform {
        /// Number of tasks.
        n: usize,
    },
    /// §V-A variant: constant weights (`w = 1`), `δ, V ~ U(0, 1)`, `P = 1`.
    ConstantWeight {
        /// Number of tasks.
        n: usize,
    },
    /// §V-A variant: constant weight and volume (`w = V = 1`),
    /// `δ ~ U(0, 1)`, `P = 1`.
    ConstantWeightVolume {
        /// Number of tasks.
        n: usize,
    },
    /// §V-B class: `P = 1, V = w = 1, δ ~ U(½, 1)` — every cap above half
    /// the machine (Theorem 11 / Conjecture 13 territory).
    HomogeneousHalfCap {
        /// Number of tasks.
        n: usize,
    },
    /// Theorem-11 class on an arbitrary machine: homogeneous weights,
    /// `δ ~ U(P/2, P)`, `V ~ U(0, P)`.
    Theorem11 {
        /// Number of tasks.
        n: usize,
        /// Machine capacity.
        p: f64,
    },
    /// Integer machine: `P = p`, `δ ∈ {1..p}` uniform, `V ~ U(0, p)`,
    /// `w ~ U(0, 1)`. The class on which fractional→integer conversion
    /// (Theorem 3 / Figure 2) is exercised.
    IntegerUniform {
        /// Number of tasks.
        n: usize,
        /// Machine size (number of processors).
        p: u32,
    },
    /// Heavy-tailed weights `wᵢ ∝ 1/rankˢ` (cluster users with wildly
    /// different priorities), `δ, V` uniform.
    ZipfWeights {
        /// Number of tasks.
        n: usize,
        /// Machine capacity.
        p: f64,
        /// Zipf exponent (`s ≈ 1` typical).
        s: f64,
    },
    /// Bimodal volumes: mostly small tasks plus a few 100× stragglers —
    /// the regime where squashed-area and height bounds diverge.
    BimodalVolumes {
        /// Number of tasks.
        n: usize,
        /// Machine capacity.
        p: f64,
        /// Probability of drawing a straggler.
        heavy_fraction: f64,
    },
    /// Adversarial "stairs": geometrically shrinking caps with equal
    /// areas; maximizes allocation changes in water-filling.
    Stairs {
        /// Number of tasks.
        n: usize,
        /// Machine capacity.
        p: f64,
    },
    /// **Large-n scaling family**: `P = 1`, Pareto volumes
    /// `V = LO · u^{−1/α}` (capped six decades above the floor), uniform
    /// weights and caps. Heavy tails stretch the completion-event horizon
    /// so the event-driven schedulers see long sparse suffixes; the family
    /// is the designated source for the `exp_perf` scaling ladder up to
    /// `n = 10⁶`.
    PowerLawVolumes {
        /// Number of tasks.
        n: usize,
        /// Pareto shape (`α ≈ 1.5` typical; smaller = heavier tail).
        alpha: f64,
    },
    /// A master/worker code-distribution fleet (Figure 1): link capacities
    /// log-uniform over two decades, processing rates uniform, code sizes
    /// correlated with rates.
    BandwidthFleet {
        /// Number of workers.
        n: usize,
        /// Server outgoing bandwidth.
        server_bandwidth: f64,
    },
    /// **Related machines, power-law speeds**: machine `j` runs at
    /// `1/(j+1)^alpha` (a few fast nodes, a long slow tail — the typical
    /// heterogeneous-cluster profile). Tasks draw integer machine caps
    /// `δ ∈ {1..machines}` and uniform volumes/weights.
    PowerLawSpeeds {
        /// Number of tasks.
        n: usize,
        /// Number of machines.
        machines: usize,
        /// Speed decay exponent (`alpha ≈ 1` typical).
        alpha: f64,
    },
    /// **Related machines, two-tier cluster**: `fast` machines at speed
    /// `speedup`, `slow` machines at speed 1 (the accelerator-plus-CPU
    /// fleet shape).
    TwoTierCluster {
        /// Number of tasks.
        n: usize,
        /// Number of fast machines.
        fast: usize,
        /// Number of slow machines.
        slow: usize,
        /// Speed of the fast tier (> 1).
        speedup: f64,
    },
    /// **Related machines, single-fast adversary**: one machine as fast as
    /// the `machines − 1` unit-speed ones combined — the profile that
    /// punishes policies which spread wide instead of queueing on the
    /// fast machine.
    SingleFastMachine {
        /// Number of tasks.
        n: usize,
        /// Total number of machines (≥ 2).
        machines: usize,
    },
    /// **Restricted assignment**: `machines` unit-speed machines, every
    /// task eligible on a seeded random subset of at least `min_eligible`
    /// of them. Integer caps `δ ∈ {1..|Eᵢ|}`; the capacity oracle is the
    /// bipartite matching rank, so policies must route work through the
    /// eligibility structure rather than a speed profile.
    RestrictedAssignment {
        /// Number of tasks.
        n: usize,
        /// Number of machines.
        machines: usize,
        /// Minimum eligibility-set size (clamped to `1..=machines`).
        min_eligible: usize,
    },
    /// **Streaming Poisson arrivals**: the §V-A uniform task mix on
    /// `P = 1`, released by a Poisson process of intensity `rate`
    /// (exponential inter-arrival times via inverse CDF). The canonical
    /// bag-of-tasks online family (Gupta–Kumar–Singla setting on the
    /// identical-machine special case).
    PoissonArrivals {
        /// Number of tasks.
        n: usize,
        /// Arrival intensity λ (tasks per unit time).
        rate: f64,
    },
    /// **Streaming arrival waves**: the §V-A uniform task mix released in
    /// `waves` equal bursts separated by `gap` time units — the bursty
    /// tenant-submission shape (every wave re-triggers a full
    /// re-allocation, the worst case for online policies that committed
    /// capacity to earlier work).
    ArrivalWaves {
        /// Number of tasks.
        n: usize,
        /// Number of bursts (clamped to `1..=n`).
        waves: usize,
        /// Time between consecutive bursts.
        gap: f64,
    },
    /// **Submodular coverage**: a concave rank table with geometric
    /// marginal gains `g_k = (1 − 1/m)^{k−1}` — each extra machine covers
    /// a `1/m` share of what remains (the classic coverage process). The
    /// table is deterministic in `machines`; only the tasks are seeded.
    SubmodularCoverage {
        /// Number of tasks.
        n: usize,
        /// Number of machines (rank-table length).
        machines: usize,
    },
}

impl Spec {
    /// Number of tasks this spec generates.
    pub fn n(&self) -> usize {
        match *self {
            Spec::PaperUniform { n }
            | Spec::ConstantWeight { n }
            | Spec::ConstantWeightVolume { n }
            | Spec::HomogeneousHalfCap { n }
            | Spec::Theorem11 { n, .. }
            | Spec::IntegerUniform { n, .. }
            | Spec::ZipfWeights { n, .. }
            | Spec::BimodalVolumes { n, .. }
            | Spec::Stairs { n, .. }
            | Spec::PowerLawVolumes { n, .. }
            | Spec::BandwidthFleet { n, .. }
            | Spec::PowerLawSpeeds { n, .. }
            | Spec::TwoTierCluster { n, .. }
            | Spec::SingleFastMachine { n, .. }
            | Spec::RestrictedAssignment { n, .. }
            | Spec::PoissonArrivals { n, .. }
            | Spec::ArrivalWaves { n, .. }
            | Spec::SubmodularCoverage { n, .. } => n,
        }
    }

    /// `true` iff this family generates instances with release times —
    /// the streaming-arrival families. Pair these with the online
    /// simulation engine (`malleable_sim::simulate`); the offline
    /// registry policies would schedule tasks before they exist.
    pub fn is_streaming(&self) -> bool {
        matches!(
            self,
            Spec::PoissonArrivals { .. } | Spec::ArrivalWaves { .. }
        )
    }

    /// `true` iff this family generates related (heterogeneous-speed)
    /// machine instances; pair such sources with
    /// `malleable_core::policy::related_capable` policies in grids.
    pub fn is_related(&self) -> bool {
        matches!(
            self,
            Spec::PowerLawSpeeds { .. }
                | Spec::TwoTierCluster { .. }
                | Spec::SingleFastMachine { .. }
        )
    }

    /// `true` iff this family generates a non-uniform capacity oracle
    /// (related speeds, submodular rank table or restricted assignment):
    /// exactly the instances that the rate-space identical-machine
    /// policies reject. Pair these with
    /// `malleable_core::policy::related_capable` policies in grids.
    pub fn is_heterogeneous(&self) -> bool {
        self.is_related()
            || matches!(
                self,
                Spec::RestrictedAssignment { .. } | Spec::SubmodularCoverage { .. }
            )
    }

    /// Short label for experiment tables. Parameterized heterogeneous
    /// families render their speed profile; the identical-machine
    /// families keep their historic static labels.
    pub fn label(&self) -> Cow<'static, str> {
        match self {
            Spec::PaperUniform { .. } => Cow::Borrowed("paper-uniform"),
            Spec::ConstantWeight { .. } => Cow::Borrowed("const-weight"),
            Spec::ConstantWeightVolume { .. } => Cow::Borrowed("const-w-v"),
            Spec::HomogeneousHalfCap { .. } => Cow::Borrowed("homog-halfcap"),
            Spec::Theorem11 { .. } => Cow::Borrowed("theorem11"),
            Spec::IntegerUniform { .. } => Cow::Borrowed("integer-uniform"),
            Spec::ZipfWeights { .. } => Cow::Borrowed("zipf-weights"),
            Spec::BimodalVolumes { .. } => Cow::Borrowed("bimodal-volumes"),
            Spec::Stairs { .. } => Cow::Borrowed("stairs"),
            Spec::PowerLawVolumes { alpha, .. } => {
                Cow::Owned(format!("powerlaw-volumes[a={alpha}]"))
            }
            Spec::BandwidthFleet { .. } => Cow::Borrowed("bandwidth-fleet"),
            Spec::PowerLawSpeeds {
                machines, alpha, ..
            } => Cow::Owned(format!("powerlaw-speeds[m={machines},a={alpha}]")),
            Spec::TwoTierCluster {
                fast,
                slow,
                speedup,
                ..
            } => Cow::Owned(format!("two-tier[{fast}x{speedup}+{slow}x1]")),
            Spec::SingleFastMachine { machines, .. } => {
                Cow::Owned(format!("single-fast[m={machines}]"))
            }
            Spec::RestrictedAssignment {
                machines,
                min_eligible,
                ..
            } => Cow::Owned(format!("restricted[m={machines},e>={min_eligible}]")),
            Spec::PoissonArrivals { rate, .. } => Cow::Owned(format!("poisson-arrivals[l={rate}]")),
            Spec::ArrivalWaves { waves, gap, .. } => {
                Cow::Owned(format!("arrival-waves[k={waves},gap={gap}]"))
            }
            Spec::SubmodularCoverage { machines, .. } => {
                Cow::Owned(format!("submodular-coverage[m={machines}]"))
            }
        }
    }
}

/// The speed profile of a related-machines [`Spec`] (None for the
/// identical-machine families). Deterministic in the spec parameters.
pub fn speed_profile(spec: &Spec) -> Option<Vec<f64>> {
    match *spec {
        Spec::PowerLawSpeeds {
            machines, alpha, ..
        } => Some(
            (0..machines)
                .map(|j| 1.0 / ((j + 1) as f64).powf(alpha))
                .collect(),
        ),
        Spec::TwoTierCluster {
            fast,
            slow,
            speedup,
            ..
        } => {
            let mut v = vec![speedup; fast];
            v.extend(std::iter::repeat_n(1.0, slow));
            Some(v)
        }
        Spec::SingleFastMachine { machines, .. } => {
            let mut v = vec![(machines - 1).max(1) as f64];
            v.extend(std::iter::repeat_n(1.0, machines - 1));
            Some(v)
        }
        _ => None,
    }
}

/// Generate the instance for `(spec, seed)` (deterministic).
pub fn generate(spec: &Spec, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let inst = match *spec {
        Spec::PaperUniform { n } => Instance::identical(
            1.0,
            (0..n)
                .map(|_| {
                    Task::new(
                        rng.random_range(LO..1.0),
                        rng.random_range(LO..1.0),
                        rng.random_range(LO..1.0),
                    )
                })
                .collect(),
        ),
        Spec::ConstantWeight { n } => Instance::identical(
            1.0,
            (0..n)
                .map(|_| Task::new(rng.random_range(LO..1.0), 1.0, rng.random_range(LO..1.0)))
                .collect(),
        ),
        Spec::ConstantWeightVolume { n } => Instance::identical(
            1.0,
            (0..n)
                .map(|_| Task::new(1.0, 1.0, rng.random_range(LO..1.0)))
                .collect(),
        ),
        Spec::HomogeneousHalfCap { n } => Instance::identical(
            1.0,
            homogeneous_deltas(n, seed)
                .into_iter()
                .map(|d| Task::new(1.0, 1.0, d))
                .collect(),
        ),
        Spec::Theorem11 { n, p } => Instance::identical(
            p,
            (0..n)
                .map(|_| {
                    Task::new(
                        rng.random_range(LO * p..p),
                        1.0,
                        rng.random_range(p / 2.0..p) + 1e-9,
                    )
                })
                .collect(),
        ),
        Spec::IntegerUniform { n, p } => Instance::identical(
            p as f64,
            (0..n)
                .map(|_| {
                    Task::new(
                        rng.random_range(LO * p as f64..p as f64),
                        rng.random_range(LO..1.0),
                        rng.random_range(1..=p) as f64,
                    )
                })
                .collect(),
        ),
        Spec::ZipfWeights { n, p, s } => Instance::identical(
            p,
            (0..n)
                .map(|rank| {
                    Task::new(
                        rng.random_range(LO * p..p),
                        1.0 / ((rank + 1) as f64).powf(s),
                        rng.random_range(LO * p..p),
                    )
                })
                .collect(),
        ),
        Spec::BimodalVolumes {
            n,
            p,
            heavy_fraction,
        } => Instance::identical(
            p,
            (0..n)
                .map(|_| {
                    let heavy = rng.random_range(0.0..1.0) < heavy_fraction;
                    let v = if heavy {
                        rng.random_range(50.0 * p..100.0 * p)
                    } else {
                        rng.random_range(LO * p..p)
                    };
                    Task::new(v, rng.random_range(LO..1.0), rng.random_range(LO * p..p))
                })
                .collect(),
        ),
        Spec::Stairs { n, p } => Instance::identical(
            p,
            (0..n)
                .map(|k| {
                    // Caps halve down to 1 while areas stay equal, so every
                    // task spills across many columns under water-filling.
                    // Integer-valued whenever `p` is a power of two, which
                    // keeps the Theorem-3 conversion applicable.
                    let delta = (p / 2f64.powi(k as i32)).max(1.0);
                    Task::new(p, 1.0, delta)
                })
                .collect(),
        ),
        Spec::PowerLawVolumes { n, alpha } => Instance::identical(
            1.0,
            (0..n)
                .map(|_| {
                    // Pareto(xₘ = LO, α) via inverse CDF, capped six decades
                    // above the floor so a single draw cannot dominate the
                    // horizon numerically.
                    let u: f64 = rng.random_range(1e-9..1.0);
                    let v = (LO * u.powf(-1.0 / alpha)).min(LO * 1e6);
                    Task::new(v, rng.random_range(LO..1.0), rng.random_range(LO..1.0))
                })
                .collect(),
        ),
        Spec::BandwidthFleet {
            n,
            server_bandwidth,
        } => Instance::identical(
            server_bandwidth,
            (0..n)
                .map(|_| {
                    // Link capacities span two decades, log-uniform.
                    let link = server_bandwidth * 10f64.powf(rng.random_range(-2.0..0.0));
                    let rate = rng.random_range(0.1..10.0);
                    // Faster workers tend to receive bigger codes.
                    let code = rng.random_range(0.5..2.0) * rate;
                    Task::new(code, rate, link)
                })
                .collect(),
        ),
        Spec::PowerLawSpeeds { n, .. }
        | Spec::TwoTierCluster { n, .. }
        | Spec::SingleFastMachine { n, .. } => {
            // The speed profile is deterministic in the spec; only the
            // tasks are seeded.
            let speeds = speed_profile(spec).expect("related spec has a profile");
            let m = speeds.len();
            let machine = MachineModel::related(speeds).expect("positive speeds");
            let total = machine.capacity();
            Instance::on(
                machine,
                (0..n)
                    .map(|_| {
                        Task::new(
                            rng.random_range(LO * total..total),
                            rng.random_range(LO..1.0),
                            rng.random_range(1..=m as u64) as f64,
                        )
                    })
                    .collect(),
            )
        }
        Spec::RestrictedAssignment {
            n,
            machines,
            min_eligible,
        } => {
            assert!(machines >= 1, "need at least one machine");
            let lo = min_eligible.clamp(1, machines);
            let mut eligible = Vec::with_capacity(n);
            let mut tasks = Vec::with_capacity(n);
            let mut idx: Vec<usize> = (0..machines).collect();
            for _ in 0..n {
                let k = rng.random_range(lo..=machines);
                // Partial Fisher–Yates: the first k entries are a uniform
                // k-subset of the machines.
                for s in 0..k {
                    let j = rng.random_range(s..machines);
                    idx.swap(s, j);
                }
                let mut set = idx[..k].to_vec();
                set.sort_unstable();
                eligible.push(set);
                tasks.push(Task::new(
                    rng.random_range(LO * machines as f64..machines as f64),
                    rng.random_range(LO..1.0),
                    rng.random_range(1..=k as u64) as f64,
                ));
            }
            let machine =
                MachineModel::restricted(machines, eligible).expect("non-empty eligibility");
            Instance::on(machine, tasks)
        }
        Spec::PoissonArrivals { n, rate } => {
            assert!(rate > 0.0, "arrival intensity must be positive");
            let tasks = (0..n)
                .map(|_| {
                    Task::new(
                        rng.random_range(LO..1.0),
                        rng.random_range(LO..1.0),
                        rng.random_range(LO..1.0),
                    )
                })
                .collect();
            // Exponential inter-arrivals via inverse CDF; the first task
            // arrives at t = 0 so the engine never idles at the origin.
            let mut t = 0.0;
            let arrivals = (0..n)
                .map(|i| {
                    if i > 0 {
                        let u: f64 = rng.random_range(1e-12..1.0);
                        t -= u.ln() / rate;
                    }
                    t
                })
                .collect();
            let mut inst = Instance::identical(1.0, tasks);
            inst.arrivals = Some(arrivals);
            inst
        }
        Spec::ArrivalWaves { n, waves, gap } => {
            assert!(gap >= 0.0 && gap.is_finite(), "gap must be ≥ 0");
            let waves = waves.clamp(1, n.max(1));
            let tasks = (0..n)
                .map(|_| {
                    Task::new(
                        rng.random_range(LO..1.0),
                        rng.random_range(LO..1.0),
                        rng.random_range(LO..1.0),
                    )
                })
                .collect();
            // Tasks split into `waves` equal bursts: task i belongs to
            // wave ⌊i·waves/n⌋ and arrives at wave·gap.
            let arrivals = (0..n)
                .map(|i| (i * waves / n.max(1)) as f64 * gap)
                .collect();
            let mut inst = Instance::identical(1.0, tasks);
            inst.arrivals = Some(arrivals);
            inst
        }
        Spec::SubmodularCoverage { n, machines } => {
            assert!(machines >= 1, "need at least one machine");
            // Rank table: cumulative sums of the coverage gains
            // (1 − 1/m)^{k−1} — strictly increasing, strictly concave.
            let decay = 1.0 - 1.0 / machines as f64;
            let mut ranks = Vec::with_capacity(machines);
            let mut total = 0.0;
            let mut gain = 1.0;
            for _ in 0..machines {
                total += gain;
                ranks.push(total);
                gain *= decay;
            }
            let machine = MachineModel::submodular(ranks).expect("concave rank table");
            let cap = machine.capacity();
            Instance::on(
                machine,
                (0..n)
                    .map(|_| {
                        Task::new(
                            rng.random_range(LO * cap..cap),
                            rng.random_range(LO..1.0),
                            rng.random_range(1..=machines as u64) as f64,
                        )
                    })
                    .collect(),
            )
        }
    };
    debug_assert!(
        inst.validate().is_ok(),
        "generator produced invalid instance"
    );
    inst
}

/// The §V-B cap distribution: `δ ~ U(½, 1)`, deterministic in `seed`.
pub fn homogeneous_deltas(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
    (0..n).map(|_| rng.random_range(0.5..1.0)).collect()
}

/// Random *rational* caps `δ = num/den ∈ [½, 1)` with bounded denominator,
/// for the exact Conjecture-13 verification (the paper used symbolic δ in
/// Sage; bounded-denominator rationals are the executable analogue).
pub fn rational_deltas(n: usize, max_den: i64, seed: u64) -> Vec<(i64, i64)> {
    assert!(max_den >= 2, "need denominators ≥ 2");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03);
    (0..n)
        .map(|_| {
            let den = rng.random_range(2..=max_den);
            // num/den ∈ [1/2, 1): num ∈ [⌈den/2⌉, den).
            let lo = (den + 1) / 2;
            let num = if lo >= den {
                lo
            } else {
                rng.random_range(lo..den)
            };
            (num, den)
        })
        .collect()
}

/// Convenience: a batch of seeds derived from a base seed.
pub fn seed_batch(base: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| base.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        for spec in [
            Spec::PaperUniform { n: 8 },
            Spec::HomogeneousHalfCap { n: 8 },
            Spec::IntegerUniform { n: 8, p: 4 },
            Spec::BandwidthFleet {
                n: 8,
                server_bandwidth: 100.0,
            },
        ] {
            let a = generate(&spec, 42);
            let b = generate(&spec, 42);
            assert_eq!(a, b, "same seed must reproduce: {}", spec.label());
            let c = generate(&spec, 43);
            assert_ne!(a, c, "different seed should differ: {}", spec.label());
        }
    }

    #[test]
    fn all_specs_produce_valid_instances() {
        let specs = [
            Spec::PaperUniform { n: 5 },
            Spec::ConstantWeight { n: 5 },
            Spec::ConstantWeightVolume { n: 5 },
            Spec::HomogeneousHalfCap { n: 5 },
            Spec::Theorem11 { n: 5, p: 4.0 },
            Spec::IntegerUniform { n: 5, p: 8 },
            Spec::ZipfWeights {
                n: 5,
                p: 4.0,
                s: 1.1,
            },
            Spec::BimodalVolumes {
                n: 20,
                p: 4.0,
                heavy_fraction: 0.1,
            },
            Spec::Stairs { n: 10, p: 16.0 },
            Spec::PowerLawVolumes { n: 20, alpha: 1.5 },
            Spec::BandwidthFleet {
                n: 5,
                server_bandwidth: 1000.0,
            },
        ];
        for spec in specs {
            for seed in 0..5 {
                let inst = generate(&spec, seed);
                inst.validate().unwrap();
                assert_eq!(inst.n(), spec.n());
            }
        }
    }

    #[test]
    fn related_specs_generate_heterogeneous_instances() {
        let specs = [
            Spec::PowerLawSpeeds {
                n: 6,
                machines: 4,
                alpha: 1.0,
            },
            Spec::TwoTierCluster {
                n: 6,
                fast: 2,
                slow: 4,
                speedup: 4.0,
            },
            Spec::SingleFastMachine { n: 6, machines: 5 },
        ];
        for spec in specs {
            assert!(spec.is_related(), "{}", spec.label());
            let profile = speed_profile(&spec).unwrap();
            for seed in 0..3 {
                let inst = generate(&spec, seed);
                inst.validate().unwrap();
                assert!(inst.machine.is_related());
                assert_eq!(inst.machine.n_machines(), Some(profile.len()));
                assert_eq!(inst.n(), 6);
                // δ caps are integer machine counts within range.
                for t in &inst.tasks {
                    assert_eq!(t.delta, t.delta.round());
                    assert!((1.0..=profile.len() as f64).contains(&t.delta));
                }
            }
            // Determinism per (spec, seed).
            assert_eq!(generate(&spec, 7), generate(&spec, 7));
            assert_ne!(generate(&spec, 7), generate(&spec, 8));
        }
        // Parameterized labels render the profile shape.
        assert_eq!(
            Spec::TwoTierCluster {
                n: 6,
                fast: 2,
                slow: 4,
                speedup: 4.0
            }
            .label(),
            "two-tier[2x4+4x1]"
        );
        // The single-fast adversary: one machine equals the rest combined.
        let p = speed_profile(&Spec::SingleFastMachine { n: 2, machines: 5 }).unwrap();
        assert_eq!(p[0], 4.0);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn restricted_and_submodular_specs_generate_heterogeneous_oracles() {
        let restricted = Spec::RestrictedAssignment {
            n: 8,
            machines: 4,
            min_eligible: 2,
        };
        assert!(!restricted.is_related());
        assert!(restricted.is_heterogeneous());
        assert_eq!(restricted.label(), "restricted[m=4,e>=2]");
        for seed in 0..5 {
            let inst = generate(&restricted, seed);
            inst.validate().unwrap();
            assert_eq!(inst.n(), 8);
            let (m, sets) = inst.machine.restriction().expect("restricted oracle");
            assert_eq!(m, 4);
            assert_eq!(sets.len(), 8);
            for (set, t) in sets.iter().zip(&inst.tasks) {
                assert!((2..=4).contains(&set.len()), "set {set:?}");
                assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted/dedup {set:?}");
                assert!(set.iter().all(|&k| k < 4));
                assert_eq!(t.delta, t.delta.round());
                assert!((1.0..=set.len() as f64).contains(&t.delta));
            }
        }
        assert_eq!(generate(&restricted, 7), generate(&restricted, 7));
        assert_ne!(generate(&restricted, 7), generate(&restricted, 8));

        let submod = Spec::SubmodularCoverage { n: 8, machines: 4 };
        assert!(!submod.is_related());
        assert!(submod.is_heterogeneous());
        assert_eq!(submod.label(), "submodular-coverage[m=4]");
        for seed in 0..5 {
            let inst = generate(&submod, seed);
            inst.validate().unwrap();
            assert_eq!(inst.n(), 8);
            assert!(!inst.machine.uniform(), "coverage table is concave");
            // Capacity is the full-coverage rank 1 + 3/4 + (3/4)² + (3/4)³.
            let expected = 1.0 + 0.75 + 0.75 * 0.75 + 0.75 * 0.75 * 0.75;
            assert!((inst.p - expected).abs() < 1e-12);
        }
        assert_eq!(generate(&submod, 7), generate(&submod, 7));
        assert_ne!(generate(&submod, 7), generate(&submod, 8));
    }

    #[test]
    fn streaming_specs_generate_valid_arrival_instances() {
        let poisson = Spec::PoissonArrivals { n: 50, rate: 2.0 };
        assert!(poisson.is_streaming());
        assert!(!poisson.is_heterogeneous());
        assert_eq!(poisson.label(), "poisson-arrivals[l=2]");
        for seed in 0..5 {
            let inst = generate(&poisson, seed);
            inst.validate().unwrap();
            assert!(inst.has_arrivals());
            let r = inst.arrivals.as_ref().unwrap();
            assert_eq!(r[0], 0.0);
            // Arrivals are sorted and strictly increasing past the origin.
            assert!(r.windows(2).all(|w| w[0] <= w[1]));
            assert!(*r.last().unwrap() > 0.0);
        }
        assert_eq!(generate(&poisson, 7), generate(&poisson, 7));
        assert_ne!(generate(&poisson, 7), generate(&poisson, 8));

        let waves = Spec::ArrivalWaves {
            n: 12,
            waves: 3,
            gap: 5.0,
        };
        assert!(waves.is_streaming());
        assert_eq!(waves.label(), "arrival-waves[k=3,gap=5]");
        let inst = generate(&waves, 4);
        inst.validate().unwrap();
        let r = inst.arrivals.as_ref().unwrap();
        // 12 tasks in 3 bursts of 4 at t = 0, 5, 10.
        assert_eq!(&r[0..4], &[0.0; 4]);
        assert_eq!(&r[4..8], &[5.0; 4]);
        assert_eq!(&r[8..12], &[10.0; 4]);
        // Offline families carry no arrivals.
        assert!(!Spec::PaperUniform { n: 3 }.is_streaming());
        assert!(generate(&Spec::PaperUniform { n: 3 }, 1).arrivals.is_none());
    }

    #[test]
    fn paper_uniform_ranges() {
        let inst = generate(&Spec::PaperUniform { n: 200 }, 7);
        assert_eq!(inst.p, 1.0);
        for t in &inst.tasks {
            assert!((LO..1.0).contains(&t.volume));
            assert!((LO..1.0).contains(&t.weight));
            assert!((LO..1.0).contains(&t.delta));
        }
    }

    #[test]
    fn homogeneous_halfcap_ranges() {
        let inst = generate(&Spec::HomogeneousHalfCap { n: 100 }, 3);
        for t in &inst.tasks {
            assert_eq!(t.volume, 1.0);
            assert_eq!(t.weight, 1.0);
            assert!((0.5..1.0).contains(&t.delta));
        }
        assert!(inst.all_deltas_above_half());
        assert!(inst.homogeneous_weights(numkit::Tolerance::default()));
    }

    #[test]
    fn integer_uniform_has_integer_caps() {
        let inst = generate(&Spec::IntegerUniform { n: 50, p: 6 }, 11);
        for t in &inst.tasks {
            assert_eq!(t.delta, t.delta.round());
            assert!((1.0..=6.0).contains(&t.delta));
        }
    }

    #[test]
    fn rational_deltas_in_half_one() {
        for (num, den) in rational_deltas(50, 64, 9) {
            assert!((2..=64).contains(&den));
            assert!(num * 2 >= den, "{num}/{den} < 1/2");
            assert!(num <= den, "{num}/{den} > 1"); // num == den only when den = 2·lo edge
        }
    }

    #[test]
    fn zipf_weights_decay() {
        let inst = generate(
            &Spec::ZipfWeights {
                n: 10,
                p: 4.0,
                s: 1.0,
            },
            1,
        );
        for w in inst.tasks.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
    }

    #[test]
    fn powerlaw_volumes_are_heavy_tailed_and_bounded() {
        let spec = Spec::PowerLawVolumes {
            n: 2000,
            alpha: 1.5,
        };
        let inst = generate(&spec, 5);
        assert_eq!(inst.p, 1.0);
        let mut vols: Vec<f64> = inst.tasks.iter().map(|t| t.volume).collect();
        for &v in &vols {
            assert!((LO..=LO * 1e6).contains(&v));
        }
        vols.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Heavy tail: the max draw dwarfs the median by orders of magnitude.
        assert!(vols[vols.len() - 1] > 50.0 * vols[vols.len() / 2]);
        assert_eq!(generate(&spec, 5), generate(&spec, 5));
        assert_eq!(spec.label(), "powerlaw-volumes[a=1.5]");
    }

    #[test]
    fn seed_batch_is_deterministic_and_distinct() {
        let a = seed_batch(99, 16);
        let b = seed_batch(99, 16);
        assert_eq!(a, b);
        let mut c = a.clone();
        c.dedup();
        assert_eq!(c.len(), 16);
    }
}
